//! Property tests for the epoch-based reclamation collector.
//!
//! Offline environment — no proptest; each property drives the
//! [`Collector`] through seeded random interleavings of pin / unpin /
//! retire / collect steps from a [`SmallRng`], so failures reproduce
//! deterministically. The model mirrors the EBR contract exactly:
//!
//! * a destructor may not run while any pin that existed at retire time
//!   is still continuously held (the grace-period guarantee);
//! * the epoch advances precisely when no pinned participant lags it;
//! * once every pin is released, a bounded number of collects drains the
//!   bag completely, each destructor running exactly once;
//! * `pending` / `pending_bytes` / `reclaimed` stay consistent with the
//!   model at every step.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use euno_htm::{Collector, Participant};
use euno_rng::{Rng, SmallRng};

/// Per-participant published state, shared with retire closures: the pin
/// "generation" uniquely identifies one continuous enter…exit span, so a
/// destructor can tell "the pin I saw at retire time is still held" from
/// "that participant unpinned and re-pinned since".
type PinModel = Arc<Mutex<Vec<Option<u64>>>>;

struct Harness {
    collector: Collector,
    participants: Vec<Participant>,
    pins: PinModel,
    /// Epoch each participant pinned at (model-side; single-threaded so
    /// exact), `None` when unpinned.
    pin_epochs: Vec<Option<u64>>,
    next_gen: u64,
    /// One flag per retired item, set by its destructor.
    freed_flags: Vec<Arc<AtomicBool>>,
    /// Model-side bytes of retired-but-not-freed items.
    outstanding_bytes: Vec<(Arc<AtomicBool>, usize)>,
    retired_total: usize,
}

impl Harness {
    fn new(threads: usize) -> Harness {
        let collector = Collector::new();
        let participants = (0..threads).map(|_| collector.register()).collect();
        Harness {
            collector,
            participants,
            pins: Arc::new(Mutex::new(vec![None; threads])),
            pin_epochs: vec![None; threads],
            next_gen: 1,
            freed_flags: Vec::new(),
            outstanding_bytes: Vec::new(),
            retired_total: 0,
        }
    }

    fn enter(&mut self, i: usize) {
        if self.pins.lock().unwrap()[i].is_some() {
            return; // keep the model flat: one logical pin per participant
        }
        self.participants[i].enter(&self.collector);
        let gen = self.next_gen;
        self.next_gen += 1;
        self.pins.lock().unwrap()[i] = Some(gen);
        self.pin_epochs[i] = Some(self.collector.global_epoch());
    }

    fn exit(&mut self, i: usize) {
        if self.pins.lock().unwrap()[i].is_none() {
            return;
        }
        self.participants[i].exit();
        self.pins.lock().unwrap()[i] = None;
        self.pin_epochs[i] = None;
    }

    /// Retire one item from pinned participant `i` (the contract requires
    /// the retirer to hold a pin). The destructor asserts the grace
    /// period: every pin generation alive at retire time must be gone by
    /// the time it runs.
    fn retire_from(&mut self, i: usize, bytes: usize) {
        assert!(
            self.pins.lock().unwrap()[i].is_some(),
            "retirer must be pinned"
        );
        let snapshot: Vec<(usize, u64)> = self
            .pins
            .lock()
            .unwrap()
            .iter()
            .enumerate()
            .filter_map(|(idx, g)| g.map(|g| (idx, g)))
            .collect();
        let pins = Arc::clone(&self.pins);
        let flag = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&flag);
        self.collector.retire(bytes, move || {
            assert!(!f.swap(true, Ordering::SeqCst), "destructor ran twice");
            let now = pins.lock().unwrap();
            for &(idx, gen) in &snapshot {
                assert_ne!(
                    now[idx],
                    Some(gen),
                    "freed while participant {idx}'s retire-time pin (gen {gen}) persists"
                );
            }
        });
        self.freed_flags.push(Arc::clone(&flag));
        self.outstanding_bytes.push((flag, bytes));
        self.retired_total += 1;
    }

    /// Collect, checking the advance condition against the model.
    fn collect_checked(&mut self) {
        let before = self.collector.global_epoch();
        let blocked = self
            .pin_epochs
            .iter()
            .any(|pe| matches!(pe, Some(e) if *e != before));
        let out = self.collector.collect();
        if blocked {
            assert_eq!(
                out.advanced_to, None,
                "epoch advanced past a lagging pin (epoch {before})"
            );
        } else {
            assert_eq!(
                out.advanced_to,
                Some(before + 1),
                "unblocked advance must succeed"
            );
        }
        self.check_accounting();
    }

    fn freed_count(&self) -> usize {
        self.freed_flags
            .iter()
            .filter(|f| f.load(Ordering::SeqCst))
            .count()
    }

    fn check_accounting(&mut self) {
        self.outstanding_bytes
            .retain(|(flag, _)| !flag.load(Ordering::SeqCst));
        let model_pending: usize = self.outstanding_bytes.len();
        let model_bytes: usize = self.outstanding_bytes.iter().map(|&(_, b)| b).sum();
        assert_eq!(self.collector.pending(), model_pending);
        assert_eq!(self.collector.pending_bytes(), model_bytes);
        assert_eq!(self.collector.reclaimed() as usize, self.freed_count());
    }
}

/// The grace-period guarantee under random interleavings: destructors
/// observe that every retire-time pin has been released, no matter how
/// enters, exits, retires and collects interleave.
#[test]
fn no_destructor_runs_under_a_retire_time_pin() {
    for seed in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(0xE90C + seed);
        let threads = rng.gen_range(2..6u64) as usize;
        let mut h = Harness::new(threads);
        for _ in 0..400 {
            let i = rng.gen_range(0..threads as u64) as usize;
            match rng.gen_range(0..10u64) {
                0..=2 => h.enter(i),
                3..=5 => h.exit(i),
                6..=7 => {
                    // Retire from a pinned participant (pin one if none).
                    h.enter(i);
                    let bytes = rng.gen_range(1..512u64) as usize;
                    h.retire_from(i, bytes);
                }
                _ => h.collect_checked(),
            }
        }
        // Quiesce: every pin released, two collects mature everything.
        for i in 0..threads {
            h.exit(i);
        }
        h.collect_checked();
        h.collect_checked();
        assert_eq!(
            h.freed_count(),
            h.retired_total,
            "seed {seed}: quiescent drain must free every retired item"
        );
        h.check_accounting();
        assert_eq!(h.collector.pending(), 0);
        assert_eq!(h.collector.pending_bytes(), 0);
    }
}

/// Dropping the last lagging pin unblocks reclamation within two
/// collects — the bound the tree's opportunistic collection cadence
/// relies on (retired at epoch e, freed once the global reaches e + 2).
#[test]
fn releasing_the_blocking_pin_unblocks_within_two_collects() {
    for seed in 0..16u64 {
        let mut rng = SmallRng::seed_from_u64(0xB10C + seed);
        let mut h = Harness::new(3);
        // A long-lived reader pins first, then a writer retires a random
        // batch; nothing may free while the reader persists.
        h.enter(0);
        h.enter(1);
        let n = rng.gen_range(1..20u64) as usize;
        for _ in 0..n {
            h.retire_from(1, rng.gen_range(1..256u64) as usize);
        }
        h.exit(1);
        let spins = rng.gen_range(1..6u64);
        for _ in 0..spins {
            h.collect_checked();
            assert_eq!(h.freed_count(), 0, "seed {seed}: reader pin must block");
        }
        h.exit(0);
        h.collect_checked();
        h.collect_checked();
        assert_eq!(h.freed_count(), n, "seed {seed}: drain after release");
    }
}

/// Collect is idempotent per retired node under randomized extra calls,
/// and byte accounting matches the model after every call.
#[test]
fn redundant_collects_free_each_node_exactly_once() {
    for seed in 0..16u64 {
        let mut rng = SmallRng::seed_from_u64(0x1DE0 + seed);
        let mut h = Harness::new(2);
        let mut retired = 0usize;
        for _ in 0..10 {
            h.enter(0);
            let n = rng.gen_range(0..5u64) as usize;
            for _ in 0..n {
                h.retire_from(0, rng.gen_range(1..128u64) as usize);
                retired += 1;
            }
            h.exit(0);
            for _ in 0..rng.gen_range(1..5u64) {
                h.collect_checked();
            }
        }
        for _ in 0..3 {
            h.collect_checked();
        }
        assert_eq!(h.freed_count(), retired, "seed {seed}");
        assert_eq!(h.collector.reclaimed() as usize, retired);
    }
}

/// A collector dropped with garbage still pending runs every leftover
/// destructor exactly once — the double-free guard inside the closures
/// does the "exactly once" half of the assertion.
#[test]
fn drop_with_pending_garbage_frees_leftovers_exactly_once() {
    for seed in 0..8u64 {
        let mut rng = SmallRng::seed_from_u64(0xD809 + seed);
        let mut h = Harness::new(2);
        h.enter(0);
        let n = rng.gen_range(1..12u64) as usize;
        for _ in 0..n {
            h.retire_from(0, rng.gen_range(1..64u64) as usize);
        }
        h.exit(0);
        if rng.gen_range(0..2u64) == 0 {
            h.collect_checked(); // partially mature some of the bag
        }
        let flags = h.freed_flags.clone();
        let Harness { collector, .. } = h;
        drop(collector);
        assert!(
            flags.iter().all(|f| f.load(Ordering::SeqCst)),
            "seed {seed}: every leftover freed at drop"
        );
    }
}
