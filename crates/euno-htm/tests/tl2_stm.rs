//! Wall-clock behaviour of the TL2-style concurrent backend: scaling on
//! disjoint keys (the property the retired global commit lock could not
//! provide), deadlock-freedom of the sorted-slot commit under seeded
//! permutations, and linearizability-flavoured invariant checks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use euno_htm::{RetryPolicy, Runtime, TxCell};

#[repr(align(64))]
struct Padded(TxCell<u64>);

fn cells(n: usize) -> Vec<Padded> {
    (0..n).map(|_| Padded(TxCell::new(0))).collect()
}

/// Run `threads` workers, each doing `per_thread` transactional RMWs of
/// its own private line, and return the wall time of the measured phase.
fn disjoint_run(rt: &std::sync::Arc<Runtime>, threads: usize, per_thread: u64) -> f64 {
    let arena = cells(threads);
    let fb = TxCell::new(0u64);
    let barrier = Barrier::new(threads + 1);
    std::thread::scope(|s| {
        for t in 0..threads {
            let (arena, fb, barrier) = (&arena, &fb, &barrier);
            let mut ctx = rt.thread(t as u64);
            s.spawn(move || {
                barrier.wait();
                for _ in 0..per_thread {
                    ctx.htm_execute(fb, &RetryPolicy::default(), |tx| {
                        let v = tx.read(&arena[t].0)?;
                        tx.write(&arena[t].0, v + 1)
                    });
                }
            });
        }
        barrier.wait();
        // Workers joined when the scope closes; time from the release of
        // the barrier to scope exit covers every worker's full run.
        Instant::now()
    })
    .elapsed()
    .as_secs_f64()
}

/// Disjoint-key transactions must get *faster* when the same total work
/// is spread over four cores. The retired NOrec design serialized every
/// writer through one global commit lock, which capped this ratio near
/// (and under contention below) 1×.
#[test]
fn disjoint_keys_scale_beyond_one_thread() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        eprintln!("skipped: host exposes {cores} < 4 cores");
        return;
    }
    const TOTAL_OPS: u64 = 200_000;
    let rt = Runtime::new_concurrent();
    // Warm up allocator + runtime once.
    disjoint_run(&rt, 1, 1_000);
    let t1 = disjoint_run(&rt, 1, TOTAL_OPS);
    let t4 = disjoint_run(&rt, 4, TOTAL_OPS / 4);
    let speedup = t1 / t4;
    assert!(
        speedup > 1.15,
        "4 threads on disjoint keys must beat 1 thread on the same total \
         work: t1={t1:.4}s t4={t4:.4}s speedup={speedup:.2}x"
    );
}

/// Sorted-slot acquisition property: threads committing write sets that
/// cover the same cells in *different program orders* must neither
/// deadlock nor lose updates. Each thread picks a seeded permutation of a
/// small shared cell pool per transaction; the commit path's sort into
/// slot order is what keeps opposing orders from waiting on each other
/// forever (the bounded try-lock is the backstop for stripe collisions).
#[test]
fn permuted_write_sets_commit_without_deadlock_or_lost_updates() {
    const CELLS: usize = 8;
    const THREADS: usize = 4;
    const TXS_PER_THREAD: usize = 2_000;
    const WRITES_PER_TX: usize = 3;

    let rt = Runtime::new_concurrent();
    let pool = cells(CELLS);
    let fb = TxCell::new(0u64);
    // Ground truth: how many increments each cell received, tallied
    // outside the engine.
    let expected: Vec<AtomicU64> = (0..CELLS).map(|_| AtomicU64::new(0)).collect();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (pool, fb, expected) = (&pool, &fb, &expected);
            let mut ctx = rt.thread(t as u64);
            s.spawn(move || {
                // Deterministic per-thread xorshift so failures replay.
                let mut state = 0x9e37_79b9u64.wrapping_mul(t as u64 + 1) | 1;
                let mut rand = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for _ in 0..TXS_PER_THREAD {
                    // A seeded permutation prefix: WRITES_PER_TX distinct
                    // indices in shuffled order.
                    let mut idx: Vec<usize> = (0..CELLS).collect();
                    for i in (1..CELLS).rev() {
                        idx.swap(i, (rand() % (i as u64 + 1)) as usize);
                    }
                    idx.truncate(WRITES_PER_TX);
                    ctx.htm_execute(fb, &RetryPolicy::default(), |tx| {
                        for &i in &idx {
                            let v = tx.read(&pool[i].0)?;
                            tx.write(&pool[i].0, v + 1)?;
                        }
                        Ok(())
                    });
                    for &i in &idx {
                        expected[i].fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    for (i, cell) in pool.iter().enumerate() {
        assert_eq!(
            cell.0.load_plain(),
            expected[i].load(Ordering::Relaxed),
            "cell {i} lost updates under permuted commit orders"
        );
    }
}

/// Linearizability smoke: writers move value between two cells keeping
/// the sum invariant; concurrent transactional readers must never see a
/// torn intermediate state. This is the test the value-validated NOrec
/// path passed only by accident of timing — TL2 read-version validation
/// makes it structural.
#[test]
fn transfer_invariant_holds_under_concurrent_readers() {
    const SUM: u64 = 1_000;
    const ITERS: usize = 5_000;

    let rt = Runtime::new_concurrent();
    let a = Padded(TxCell::new(SUM));
    let b = Padded(TxCell::new(0u64));
    let fb = TxCell::new(0u64);

    std::thread::scope(|s| {
        for t in 0..2u64 {
            let (a, b, fb) = (&a, &b, &fb);
            let mut ctx = rt.thread(t);
            s.spawn(move || {
                for i in 0..ITERS as u64 {
                    let delta = (i % 7) + 1;
                    ctx.htm_execute(fb, &RetryPolicy::default(), |tx| {
                        let va = tx.read(&a.0)?;
                        let vb = tx.read(&b.0)?;
                        let d = delta.min(va);
                        tx.write(&a.0, va - d)?;
                        tx.write(&b.0, vb + d)
                    });
                }
            });
        }
        for t in 2..4u64 {
            let (a, b, fb) = (&a, &b, &fb);
            let mut ctx = rt.thread(t);
            s.spawn(move || {
                for _ in 0..ITERS {
                    let sum = ctx
                        .htm_execute(fb, &RetryPolicy::default(), |tx| {
                            Ok(tx.read(&a.0)? + tx.read(&b.0)?)
                        })
                        .value;
                    assert_eq!(sum, SUM, "reader observed a torn transfer");
                }
            });
        }
    });
    assert_eq!(a.0.load_plain() + b.0.load_plain(), SUM);
}

/// Hot-cell stress against the TL2 backend: no increment may be lost
/// through the full escalation ladder (speculation, backoff, fallback).
#[test]
fn hot_cell_increments_survive_contention() {
    const THREADS: u64 = 4;
    const ITERS: u64 = 10_000;
    let rt = Runtime::new_concurrent();
    let cell = Padded(TxCell::new(0u64));
    let fb = TxCell::new(0u64);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (cell, fb) = (&cell, &fb);
            let mut ctx = rt.thread(t);
            s.spawn(move || {
                for _ in 0..ITERS {
                    ctx.htm_execute(fb, &RetryPolicy::default(), |tx| {
                        let v = tx.read(&cell.0)?;
                        tx.write(&cell.0, v + 1)
                    });
                }
            });
        }
    });
    assert_eq!(cell.0.load_plain(), THREADS * ITERS);
}

/// Writing commits on the RTM backend must advance the TL2 clock (the
/// executor bumps it inside the hardware transaction), otherwise
/// episode-free optimistic readers validating `seq == snap` would accept
/// snapshots an elided writer landed in the middle of. Read-only regions
/// must leave the clock alone. Holds on both the real-RTM and the
/// software-degraded path, so the test runs regardless of CPU support.
#[cfg(all(feature = "hw-rtm", target_arch = "x86_64"))]
#[test]
fn writing_commits_advance_the_optimistic_clock_on_rtm() {
    let rt = Runtime::new_concurrent_rtm();
    eprintln!("rtm_active = {}", rt.rtm_active());
    let cell = Padded(TxCell::new(0u64));
    let fb = TxCell::new(0u64);
    let mut ctx = rt.thread(0);

    let before = ctx.optimistic_snapshot();
    ctx.htm_execute(&fb, &RetryPolicy::default(), |tx| {
        let v = tx.read(&cell.0)?;
        tx.write(&cell.0, v + 1)
    });
    assert!(
        ctx.optimistic_snapshot() > before,
        "a writing commit left the optimistic clock unchanged"
    );

    let mid = ctx.optimistic_snapshot();
    ctx.htm_execute(&fb, &RetryPolicy::default(), |tx| tx.read(&cell.0));
    assert_eq!(
        ctx.optimistic_snapshot(),
        mid,
        "a read-only region must not move the clock"
    );
}

/// The same lost-update check on the hardware lock-elision backend. Only
/// meaningful where the CPU exposes RTM; elsewhere the runtime reports
/// `rtm_active() == false` and transparently uses the software episodes,
/// so the assertion still must hold.
#[cfg(all(feature = "hw-rtm", target_arch = "x86_64"))]
#[test]
fn hot_cell_increments_survive_contention_on_rtm() {
    const THREADS: u64 = 4;
    const ITERS: u64 = 10_000;
    let rt = Runtime::new_concurrent_rtm();
    eprintln!(
        "rtm_active = {} (cpu rtm = {})",
        rt.rtm_active(),
        euno_htm::hw_rtm_available()
    );
    let cell = Padded(TxCell::new(0u64));
    let fb = TxCell::new(0u64);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (cell, fb) = (&cell, &fb);
            let mut ctx = rt.thread(t);
            s.spawn(move || {
                for _ in 0..ITERS {
                    ctx.htm_execute(fb, &RetryPolicy::default(), |tx| {
                        let v = tx.read(&cell.0)?;
                        tx.write(&cell.0, v + 1)
                    });
                }
            });
        }
    });
    assert_eq!(cell.0.load_plain(), THREADS * ITERS);
}
