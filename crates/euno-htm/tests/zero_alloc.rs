//! Zero-allocation gate for the episode hot path.
//!
//! The engine's per-episode state (read/write line sets, the NOrec write
//! log, retry bookkeeping) lives in a per-thread scratch pool and is
//! recycled across episodes; the virtual-mode window and line index reuse
//! their buffers across prune/sweep cycles. After a warmup long enough to
//! reach every structure's high-water mark, running more episodes must
//! perform **no heap allocation at all** — the property that makes engine
//! wall-clock throughput allocation-independent. This test installs a
//! counting global allocator and asserts exactly that.
//!
//! On failure, re-run with `EUNO_ALLOC_TRAP=1` to print the sizes of the
//! first measured-phase allocations — usually enough to identify the
//! structure that grew (window deque, an index list, a line set spill).
//!
//! Single `#[test]` on purpose: the allocation counter is process-global,
//! so a concurrently scheduled second test would pollute the measured
//! window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use euno_htm::{CostModel, Mode, RetryPolicy, Runtime, ThreadCtx, TxCell};

/// Forwards to the system allocator, counting every allocation and
/// reallocation (frees are irrelevant to the property under test).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// Count only the test thread: the libtest harness keeps a main thread
// alive (slow-test timers, result channels) that can allocate mid-window
// on a loaded machine, and a process-global count would blame the engine
// for it. Const-initialized so reading the flag in the allocator never
// itself allocates TLS storage.
thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

/// Diagnostic trap: remaining slots of [`TRAP_SIZES`] to fill with the
/// request sizes of counted allocations (enabled via `EUNO_ALLOC_TRAP`).
/// Recording into preallocated statics is deliberate — capturing a
/// backtrace *inside* the allocator deadlocks.
static TRAP: AtomicU64 = AtomicU64::new(0);
static TRAP_SIZES: [AtomicU64; 16] = [const { AtomicU64::new(0) }; 16];

fn note_size(layout: Layout) {
    let n = TRAP.load(Ordering::Relaxed);
    if n > 0 {
        TRAP.fetch_sub(1, Ordering::Relaxed);
        TRAP_SIZES[(16 - n as usize).min(15)].store(layout.size() as u64, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.with(|c| c.get()) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            note_size(layout);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.with(|c| c.get()) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            note_size(layout);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// One counter per cache line, as a tree leaf slot would be.
#[repr(align(64))]
struct Padded(TxCell<u64>);

const CELLS: usize = 8;
const SCAN: usize = 4;

/// Episodes between prune calls. The steady-state length of the window
/// (and so of the per-line index lists) depends on this cadence, so the
/// warmup and measured phases must use episode counts divisible by it:
/// otherwise the phase boundary widens one prune gap, the window briefly
/// overshoots its warmup high-water mark, and the deque legitimately
/// reallocates inside the measured window.
const PRUNE_EVERY: u64 = 256;

/// A mixed bag of episodes: transactional RMWs round-robin over the cells
/// plus a read-only scan every fourth episode, so both the write-set and
/// read-set paths (and the commit-time window check for each) stay hot.
fn run_episodes(
    ctx: &mut ThreadCtx,
    rt: &Runtime,
    fb: &TxCell<u64>,
    cells: &[Padded],
    count: u64,
    prune: bool,
) {
    let policy = RetryPolicy::default();
    for i in 0..count {
        if i % 4 == 3 {
            ctx.htm_execute(fb, &policy, |tx| {
                let mut acc = 0u64;
                for c in &cells[..SCAN] {
                    acc = acc.wrapping_add(tx.read(&c.0)?);
                }
                Ok(acc)
            });
        } else {
            let c = &cells[i as usize % CELLS].0;
            ctx.htm_execute(fb, &policy, |tx| {
                let v = tx.read(c)?;
                tx.write(c, v + 1)
            });
        }
        // The scheduler prunes with the minimum pending episode start,
        // which trails the current clock; emulate that lag so recent
        // window records (and their line-index entries) stay live across
        // sweeps instead of being dropped and re-created.
        if prune && i % PRUNE_EVERY == PRUNE_EVERY - 1 {
            rt.virt_prune(ctx.clock.saturating_sub(100_000));
        }
    }
}

fn dump_trapped_sizes() {
    for s in &TRAP_SIZES {
        let v = s.swap(0, Ordering::Relaxed);
        if v > 0 {
            eprintln!("measured-phase allocation of {v} bytes");
        }
    }
}

#[test]
fn steady_state_episodes_do_not_allocate() {
    let trap = std::env::var_os("EUNO_ALLOC_TRAP").is_some();

    // ---- virtual mode: the deterministic engine behind every figure ----
    let rt = Runtime::new_virtual();
    let mut ctx = rt.thread(42);
    let fb = TxCell::new(0u64);
    let cells: Vec<Padded> = (0..CELLS).map(|_| Padded(TxCell::new(0))).collect();

    // Warmup: fill the episode scratch pool, grow the window deque, the
    // line index lists and the hot-line map to their steady high-water
    // marks, and cross the index-sweep threshold many times.
    run_episodes(&mut ctx, &rt, &fb, &cells, 200 * PRUNE_EVERY, true);

    COUNTING.with(|c| c.set(true));
    let before = ALLOCS.load(Ordering::Relaxed);
    if trap {
        TRAP.store(16, Ordering::Relaxed);
    }
    run_episodes(&mut ctx, &rt, &fb, &cells, 40 * PRUNE_EVERY, true);
    TRAP.store(0, Ordering::Relaxed);
    let during = ALLOCS.load(Ordering::Relaxed) - before;
    COUNTING.with(|c| c.set(false));
    dump_trapped_sizes();
    assert_eq!(
        during, 0,
        "virtual-mode steady state allocated {during} times in 10k episodes"
    );
    assert!(
        ctx.exec_stages().commits >= 240 * PRUNE_EVERY,
        "sanity: episodes actually committed (commits={})",
        ctx.exec_stages().commits
    );

    // ---- concurrent mode: the NOrec software path, single thread ------
    let rt = Runtime::new(Mode::Concurrent, CostModel::default());
    let mut ctx = rt.thread(43);
    let fb = TxCell::new(0u64);
    let cells: Vec<Padded> = (0..CELLS).map(|_| Padded(TxCell::new(0))).collect();

    run_episodes(&mut ctx, &rt, &fb, &cells, 30_000, false);

    COUNTING.with(|c| c.set(true));
    let before = ALLOCS.load(Ordering::Relaxed);
    if trap {
        TRAP.store(16, Ordering::Relaxed);
    }
    run_episodes(&mut ctx, &rt, &fb, &cells, 10_000, false);
    TRAP.store(0, Ordering::Relaxed);
    let during = ALLOCS.load(Ordering::Relaxed) - before;
    COUNTING.with(|c| c.set(false));
    dump_trapped_sizes();
    assert_eq!(
        during, 0,
        "concurrent-mode steady state allocated {during} times in 10k episodes"
    );
    ctx.finish();
}
