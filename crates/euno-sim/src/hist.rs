//! Log-bucketed latency histograms for per-operation cycle counts.
//!
//! Throughput curves hide tail behaviour: a fallback convoy shows up as a
//! p99.9 two orders of magnitude above the median long before it moves
//! the mean. The harness records each operation's virtual-cycle latency
//! here; experiments report quantiles alongside the figures.
//!
//! The implementation lives in `euno-metrics` ([`LogHistogram`]) so the
//! per-thread metric shards, the sampler windows and the harness all share
//! one bucket layout (powers of √2, 80 buckets, ~3 dB resolution, exact
//! max in the terminal bucket); this alias keeps the simulator's historic
//! name and API. The tests below are the original `LatencyHistogram`
//! suite, kept as a compatibility contract over the re-export — including
//! the exact-max terminal-bucket regression.

pub use euno_metrics::LogHistogram as LatencyHistogram;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn records_and_counts() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 10, 100, 1000, 10_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 10_000);
        assert!((h.mean() - 2222.2).abs() < 1.0);
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_the_data() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i);
        }
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        // Log-bucket resolution: within a factor of √2 of the true value.
        assert!((2_900..=5_000).contains(&p50), "p50 = {p50}");
        assert!((6_000..=10_000).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn heavy_tail_visible_in_p999() {
        let mut h = LatencyHistogram::new();
        for _ in 0..999 {
            h.record(100);
        }
        h.record(1_000_000); // one convoy victim
        assert!(h.quantile(0.5) < 200);
        // With exactly 1000 samples the 0.999-quantile is the 999th value
        // (still in the bulk); the convoy victim appears from 0.9995 up —
        // and the terminal bucket reports the *exact* observed max, not
        // its bucket floor (which would under-report by up to √2×).
        assert_eq!(h.quantile(0.9995), 1_000_000);
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn terminal_quantile_is_exact_max() {
        // Regression: quantile(1.0) used to return the last bucket's
        // floor. 1000 is in bucket [768, 1024) → floor 768 ≠ max.
        let mut h = LatencyHistogram::new();
        h.record(1000);
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.quantile(0.5), 1000);
        // With bulk below, sub-terminal quantiles still use bucket floors
        // (approximate), but the terminal one stays exact.
        for _ in 0..99 {
            h.record(10);
        }
        assert!(h.quantile(0.5) < 1000);
        assert_eq!(h.quantile(1.0), 1000);
        assert!(h.quantile(1.0) >= h.quantile(0.999));
    }

    #[test]
    fn nonzero_buckets_expose_distribution() {
        let mut h = LatencyHistogram::new();
        h.record(1);
        h.record(1);
        h.record(1_000_000);
        let b = h.nonzero_buckets();
        assert_eq!(b.len(), 2);
        assert_eq!(b[0], (1, 2));
        assert_eq!(b.iter().map(|&(_, c)| c).sum::<u64>(), h.count());
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1_000);
    }

    #[test]
    fn bucket_floors_monotone() {
        let mut prev = 0;
        for i in 0..40 {
            let f = LatencyHistogram::bucket_floor(i);
            assert!(f >= prev, "bucket {i}: {f} < {prev}");
            prev = f;
        }
    }

    #[test]
    fn summary_formats() {
        let mut h = LatencyHistogram::new();
        h.record(500);
        let s = h.summary();
        assert!(s.contains("mean") && s.contains("p99"));
    }
}
