//! Log-bucketed latency histograms for per-operation cycle counts.
//!
//! Throughput curves hide tail behaviour: a fallback convoy shows up as a
//! p99.9 two orders of magnitude above the median long before it moves
//! the mean. The harness records each operation's virtual-cycle latency
//! here; experiments report quantiles alongside the figures.
//!
//! Buckets are powers of √2 (~3 dB resolution), covering 1 cycle to ~10¹²
//! with 80 buckets — constant memory, O(1) insert, quantile error < 20 %.

/// A fixed-size logarithmic histogram of u64 samples.
#[derive(Clone)]
pub struct LatencyHistogram {
    buckets: [u64; Self::BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl LatencyHistogram {
    const BUCKETS: usize = 80;

    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; Self::BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Bucket index: ~2 buckets per octave (powers of √2).
    #[inline]
    fn index(value: u64) -> usize {
        let v = value.max(1);
        // floor(2·log2(v)) = number of half-octaves.
        let bits = 63 - v.leading_zeros() as usize; // floor(log2 v)
        let half = if bits < 63 && v >= (3u64 << bits.saturating_sub(1)).max(1) && bits > 0 {
            // Upper half-octave: v ≥ 1.5·2^bits … approximated via the
            // second-highest bit.
            2 * bits + 1
        } else {
            2 * bits
        };
        half.min(Self::BUCKETS - 1)
    }

    /// Lower bound of a bucket (for quantile reporting).
    fn bucket_floor(i: usize) -> u64 {
        let bits = i / 2;
        let base = 1u64 << bits.min(62);
        if i % 2 == 1 {
            base + base / 2
        } else {
            base
        }
    }

    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile (`q` in [0,1]): the floor of the bucket where
    /// the cumulative count crosses `q·count` — except in the **terminal**
    /// (highest non-empty) bucket, where the exact observed maximum is
    /// returned. Without that, `quantile(1.0)` under-reported the max by
    /// up to √2× (the bucket's width).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let last = match self.buckets.iter().rposition(|&c| c > 0) {
            Some(i) => i,
            None => return 0,
        };
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return if i == last {
                    self.max
                } else {
                    Self::bucket_floor(i)
                };
            }
        }
        self.max
    }

    /// The non-empty buckets as `(floor, count)` pairs — the raw
    /// distribution a run report serializes.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_floor(i), c))
            .collect()
    }

    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// One-line summary: `mean/p50/p99/p999/max` in cycles.
    pub fn summary(&self) -> String {
        format!(
            "mean {:.0}cyc p50 {} p99 {} p99.9 {} max {}",
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.99),
            self.quantile(0.999),
            self.max()
        )
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LatencyHistogram({})", self.summary())
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn records_and_counts() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 10, 100, 1000, 10_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 10_000);
        assert!((h.mean() - 2222.2).abs() < 1.0);
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_the_data() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i);
        }
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        // Log-bucket resolution: within a factor of √2 of the true value.
        assert!((2_900..=5_000).contains(&p50), "p50 = {p50}");
        assert!((6_000..=10_000).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn heavy_tail_visible_in_p999() {
        let mut h = LatencyHistogram::new();
        for _ in 0..999 {
            h.record(100);
        }
        h.record(1_000_000); // one convoy victim
        assert!(h.quantile(0.5) < 200);
        // With exactly 1000 samples the 0.999-quantile is the 999th value
        // (still in the bulk); the convoy victim appears from 0.9995 up —
        // and the terminal bucket reports the *exact* observed max, not
        // its bucket floor (which would under-report by up to √2×).
        assert_eq!(h.quantile(0.9995), 1_000_000);
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn terminal_quantile_is_exact_max() {
        // Regression: quantile(1.0) used to return the last bucket's
        // floor. 1000 is in bucket [768, 1024) → floor 768 ≠ max.
        let mut h = LatencyHistogram::new();
        h.record(1000);
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.quantile(0.5), 1000);
        // With bulk below, sub-terminal quantiles still use bucket floors
        // (approximate), but the terminal one stays exact.
        for _ in 0..99 {
            h.record(10);
        }
        assert!(h.quantile(0.5) < 1000);
        assert_eq!(h.quantile(1.0), 1000);
        assert!(h.quantile(1.0) >= h.quantile(0.999));
    }

    #[test]
    fn nonzero_buckets_expose_distribution() {
        let mut h = LatencyHistogram::new();
        h.record(1);
        h.record(1);
        h.record(1_000_000);
        let b = h.nonzero_buckets();
        assert_eq!(b.len(), 2);
        assert_eq!(b[0], (1, 2));
        assert_eq!(b.iter().map(|&(_, c)| c).sum::<u64>(), h.count());
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1_000);
    }

    #[test]
    fn bucket_floors_monotone() {
        let mut prev = 0;
        for i in 0..40 {
            let f = LatencyHistogram::bucket_floor(i);
            assert!(f >= prev, "bucket {i}: {f} < {prev}");
            prev = f;
        }
    }

    #[test]
    fn summary_formats() {
        let mut h = LatencyHistogram::new();
        h.record(500);
        let s = h.summary();
        assert!(s.contains("mean") && s.contains("p99"));
    }
}
