//! Run-level metrics: what each paper figure plots.

use euno_htm::{AbortCounts, CostModel, ThreadStats};
use euno_metrics::{ExecStages, FlipEvent, TimeSeries};
use euno_trace::{LeafProfile, ThreadTrace};

use crate::hist::LatencyHistogram;

/// Aggregated result of one experiment run (one point of one figure).
#[derive(Clone, Debug)]
pub struct RunMetrics {
    /// Number of worker threads (virtual or OS).
    pub threads: usize,
    /// Completed operations across all threads.
    pub total_ops: u64,
    /// Makespan: virtual seconds (virtual mode) or wall seconds
    /// (concurrent mode) from first op to last.
    pub elapsed_secs: f64,
    /// `total_ops / elapsed_secs` — the y-axis of Figures 1, 8, 10-12.
    pub throughput: f64,
    /// Aborts per operation by cause — Figures 2 and 9.
    pub aborts: AbortCounts,
    pub aborts_per_op: f64,
    /// Fraction of cycles burnt in aborted attempts (§2.3).
    pub wasted_cycle_fraction: f64,
    /// Mean instrumented memory accesses per op (instruction proxy, §5.2).
    pub accesses_per_op: f64,
    /// Fallback-path executions per op.
    pub fallbacks_per_op: f64,
    /// Merged raw counters.
    pub stats: ThreadStats,
    /// Executor stage counts (attempts/commits/middles/fallbacks/...),
    /// aggregated from the run's `euno-metrics` thread shards.
    pub stages: ExecStages,
    /// Registry snapshots sampled every Δ ticks, when the run asked for
    /// them ([`crate::harness::RunConfig::sample_every`]).
    pub timeseries: Option<TimeSeries>,
    /// Unit of [`Snapshot::tick`](euno_metrics::Snapshot) values in
    /// `timeseries` and `flips`: `"cycles"` (virtual) or `"us"` (wall).
    pub tick_unit: &'static str,
    /// CCM bypass flips and programmed shift marks recorded during the
    /// run, decoded from the registry's flip log.
    pub flips: Vec<FlipEvent>,
    /// Per-thread raw counters (scalability diagnostics).
    pub per_thread: Vec<ThreadStats>,
    /// Per-operation virtual-cycle latency distribution (merged).
    pub latency: LatencyHistogram,
    /// Collected per-thread event traces, when the run had tracing on
    /// ([`crate::harness::RunConfig::trace_capacity`]).
    pub trace: Option<Vec<ThreadTrace>>,
    /// The hot-leaf contention profile, when the run asked for one
    /// ([`crate::harness::RunConfig::profile`]).
    pub profile: Option<LeafProfile>,
}

impl RunMetrics {
    /// Build from per-thread stats plus the makespan in cycles
    /// (virtual mode).
    pub fn from_virtual(
        per_thread: Vec<ThreadStats>,
        stages: ExecStages,
        makespan_cycles: u64,
        cost: &CostModel,
    ) -> Self {
        Self::from_virtual_with_latency(
            per_thread,
            stages,
            makespan_cycles,
            cost,
            LatencyHistogram::new(),
        )
    }

    /// As [`RunMetrics::from_virtual`], with a latency histogram. The
    /// measured span is the makespan minus the earliest post-warmup clock,
    /// so warmup cycles never dilute throughput.
    pub fn from_virtual_with_latency(
        per_thread: Vec<ThreadStats>,
        stages: ExecStages,
        makespan_cycles: u64,
        cost: &CostModel,
        latency: LatencyHistogram,
    ) -> Self {
        // Threads that never finished warmup (None) measured from cycle 0.
        let measure_start = per_thread
            .iter()
            .map(|s| s.measure_start_cycles.unwrap_or(0))
            .min()
            .unwrap_or(0);
        let span = makespan_cycles.saturating_sub(measure_start).max(1);
        let elapsed = cost.cycles_to_secs(span);
        Self::build(per_thread, stages, elapsed, latency)
    }

    /// Build from per-thread stats plus measured wall time and the merged
    /// per-operation latency histogram (concurrent mode). Pass
    /// `LatencyHistogram::new()` only when the harness genuinely recorded
    /// no latencies — reports distinguish "no samples" from "not wired".
    pub fn from_wall(
        per_thread: Vec<ThreadStats>,
        stages: ExecStages,
        elapsed_secs: f64,
        latency: LatencyHistogram,
    ) -> Self {
        let mut m = Self::build(per_thread, stages, elapsed_secs.max(1e-9), latency);
        m.tick_unit = "us";
        m
    }

    fn build(
        per_thread: Vec<ThreadStats>,
        stages: ExecStages,
        elapsed_secs: f64,
        latency: LatencyHistogram,
    ) -> Self {
        let mut merged = ThreadStats::default();
        for s in &per_thread {
            merged.merge(s);
        }
        let ops = merged.ops.max(1);
        RunMetrics {
            threads: per_thread.len(),
            total_ops: merged.ops,
            elapsed_secs,
            throughput: merged.ops as f64 / elapsed_secs,
            aborts: merged.aborts.clone(),
            aborts_per_op: merged.aborts.total() as f64 / ops as f64,
            wasted_cycle_fraction: merged.wasted_cycle_fraction(),
            accesses_per_op: merged.mem_accesses as f64 / ops as f64,
            fallbacks_per_op: stages.fallbacks as f64 / ops as f64,
            stats: merged,
            stages,
            per_thread,
            latency,
            timeseries: None,
            tick_unit: "cycles",
            flips: Vec::new(),
            trace: None,
            profile: None,
        }
    }

    /// Throughput in millions of operations per second (the paper's unit).
    pub fn mops(&self) -> f64 {
        self.throughput / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_aggregate_two_threads() {
        let a = ThreadStats {
            ops: 100,
            cycles_total: 1000,
            cycles_wasted: 100,
            mem_accesses: 400,
            ..Default::default()
        };
        let mut b = ThreadStats {
            ops: 100,
            cycles_total: 1000,
            ..Default::default()
        };
        b.aborts.capacity = 10;
        let cost = CostModel::default();
        let m = RunMetrics::from_virtual(vec![a, b], ExecStages::default(), 2_300_000, &cost);
        assert_eq!(m.threads, 2);
        assert_eq!(m.total_ops, 200);
        // 2.3e6 cycles at 2.3 GHz = 1 ms → 200 ops / 1 ms = 200 kops/s.
        assert!((m.throughput - 200_000.0).abs() < 1.0);
        assert!((m.aborts_per_op - 0.05).abs() < 1e-12);
        assert!((m.wasted_cycle_fraction - 0.05).abs() < 1e-12);
        assert!((m.accesses_per_op - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_ops_does_not_divide_by_zero() {
        let m = RunMetrics::from_wall(
            vec![ThreadStats::default()],
            ExecStages::default(),
            0.0,
            LatencyHistogram::new(),
        );
        assert_eq!(m.total_ops, 0);
        assert!(m.throughput.is_finite());
        assert_eq!(m.aborts_per_op, 0.0);
    }

    #[test]
    fn mops_unit() {
        let a = ThreadStats {
            ops: 5_000_000,
            ..Default::default()
        };
        let m = RunMetrics::from_wall(vec![a], ExecStages::default(), 1.0, LatencyHistogram::new());
        assert!((m.mops() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn from_wall_carries_latency_histogram() {
        let mut h = LatencyHistogram::new();
        for v in [100u64, 200, 400, 100_000] {
            h.record(v);
        }
        let a = ThreadStats {
            ops: 4,
            ..Default::default()
        };
        let m = RunMetrics::from_wall(vec![a], ExecStages::default(), 0.5, h);
        assert_eq!(m.latency.count(), 4);
        let (p50, p99, p999) = (
            m.latency.quantile(0.5),
            m.latency.quantile(0.99),
            m.latency.quantile(0.999),
        );
        assert!(p50 <= p99 && p99 <= p999);
        assert_eq!(m.latency.max(), 100_000);
    }

    #[test]
    fn warmup_subtraction_uses_earliest_real_mark() {
        // Two warmed threads plus the makespan: the measured span is
        // makespan − min(measure_start), so throughput must be strictly
        // higher than the naive makespan-only number.
        let cost = CostModel::default();
        let mk = |start: u64| ThreadStats {
            ops: 1_000,
            measure_start_cycles: Some(start),
            ..Default::default()
        };
        let warmed = RunMetrics::from_virtual(
            vec![mk(400_000), mk(500_000)],
            ExecStages::default(),
            2_300_000,
            &cost,
        );
        let naive = RunMetrics::from_virtual(
            vec![
                ThreadStats {
                    ops: 1_000,
                    ..Default::default()
                };
                2
            ],
            ExecStages::default(),
            2_300_000,
            &cost,
        );
        assert_eq!(
            warmed.stats.measure_start_cycles,
            Some(400_000),
            "merged stats must keep the warmup mark (regression: min-with-0 pinned it to 0)"
        );
        assert!(
            warmed.throughput > naive.throughput * 1.15,
            "warmup subtraction must change the throughput: {} vs {}",
            warmed.throughput,
            naive.throughput
        );
    }
}
