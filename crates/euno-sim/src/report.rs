//! Structured run reports: one JSON document per figure regeneration.
//!
//! CSVs are fine for plotting one series, but they drop everything a
//! later perf PR needs to argue against: the abort breakdown, the latency
//! tail, the fallback/bypass behaviour Brown's HTM-template work shows
//! dominates HTM performance, and — crucially — the provenance (workload
//! spec, θ, seed, retry policy, cost-model constants, git revision) that
//! makes a number reproducible. Every `euno-bench` binary therefore
//! writes a `BENCH_<fig>.json` next to its CSV through this module.
//!
//! The JSON value type, writer and parser are in-tree: the container's
//! crate registry is unreachable (DESIGN.md §6), so no serde. The format
//! is documented in DESIGN.md §11 and checked by [`validate_report`],
//! which `scripts/bench.sh` and the `report_check` binary run over every
//! emitted report.

use std::path::{Path, PathBuf};

use euno_htm::{AbortCounts, CostModel};
use euno_workloads::{KeyDistribution, WorkloadSpec};

use crate::harness::RunConfig;
use crate::metrics::RunMetrics;

/// Bumped whenever a required key is added, removed or renamed.
pub const SCHEMA_VERSION: u64 = 1;

// ====================== JSON value, writer, parser ======================

/// A minimal JSON document tree. Numbers are `f64` (every counter this
/// repo emits fits 2^53 with room to spare); integral values are written
/// without a fractional part.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn u64(v: u64) -> Json {
        debug_assert!(v < (1u64 << 53), "u64 {v} exceeds exact f64 range");
        Json::Num(v as f64)
    }

    /// Object-field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serialize with 2-space indentation (human-diffable reports).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null"); // JSON has no NaN/Inf
                } else if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = std::fmt::Write::write_fmt(out, format_args!("{}", *n as i64));
                } else {
                    let _ = std::fmt::Write::write_fmt(out, format_args!("{n}"));
                }
            }
            Json::Str(s) => Self::write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line; nested structures
                // get one element per line.
                let scalar = items
                    .iter()
                    .all(|i| !matches!(i, Json::Obj(_) | Json::Arr(_)));
                out.push('[');
                for (n, item) in items.iter().enumerate() {
                    if n > 0 {
                        out.push(',');
                    }
                    if !scalar {
                        out.push('\n');
                        out.push_str(&"  ".repeat(indent + 1));
                    } else if n > 0 {
                        out.push(' ');
                    }
                    item.write(out, indent + 1);
                }
                if !scalar {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (n, (k, v)) in fields.iter().enumerate() {
                    if n > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    Self::write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Parse a JSON document (strict enough for round-tripping our own
    /// reports and validating them in CI).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

// ============================ report model ============================

/// One measured run inside a report: the full provenance needed to
/// reproduce it plus the metrics it produced.
#[derive(Clone, Debug)]
pub struct RunEntry {
    /// System label ("Euno-B+Tree", "+Split HTM", …).
    pub system: String,
    /// The figure's x-axis value as a printable string (θ, threads, …).
    pub x: String,
    pub spec: WorkloadSpec,
    pub cfg: RunConfig,
    pub metrics: RunMetrics,
    /// Figure-specific extras (memory accounting, swept cost constants…).
    pub extra: Vec<(String, f64)>,
}

/// A full figure regeneration: provenance + every run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Stable figure id ("fig01", "ycsb", …) — names the output file.
    pub figure: String,
    /// Human title ("Figure 1: HTM-B+Tree throughput vs contention").
    pub title: String,
    /// Cost-model constants the runs were charged under.
    pub cost: CostModel,
    pub runs: Vec<RunEntry>,
}

fn dist_json(dist: &KeyDistribution) -> Json {
    let (name, param): (&str, Json) = match dist {
        KeyDistribution::Uniform => ("uniform", Json::Null),
        KeyDistribution::Zipfian { theta, scramble } => (
            "zipfian",
            Json::Obj(vec![
                ("theta".into(), Json::Num(*theta)),
                ("scramble".into(), Json::Bool(*scramble)),
            ]),
        ),
        KeyDistribution::SelfSimilar { h } => ("self_similar", Json::Num(*h)),
        KeyDistribution::Normal { sd_fraction } => ("normal", Json::Num(*sd_fraction)),
        KeyDistribution::Poisson { lambda } => ("poisson", Json::Num(*lambda)),
    };
    Json::Obj(vec![
        ("name".into(), Json::str(name)),
        ("param".into(), param),
    ])
}

fn spec_json(spec: &WorkloadSpec) -> Json {
    Json::Obj(vec![
        ("key_range".into(), Json::u64(spec.key_range)),
        ("dist".into(), dist_json(&spec.dist)),
        (
            "mix".into(),
            Json::Obj(vec![
                ("get".into(), Json::Num(spec.mix.get)),
                ("put".into(), Json::Num(spec.mix.put)),
                ("delete".into(), Json::Num(spec.mix.delete)),
                ("scan".into(), Json::Num(spec.mix.scan)),
            ]),
        ),
        ("scan_len".into(), Json::u64(spec.scan_len as u64)),
        ("preload".into(), Json::str(format!("{:?}", spec.preload))),
        ("policy".into(), Json::str(spec.policy.label())),
    ])
}

fn cost_json(c: &CostModel) -> Json {
    Json::Obj(vec![
        ("freq_hz".into(), Json::Num(c.freq_hz)),
        ("access_hit".into(), Json::u64(c.access_hit)),
        ("line_first_touch".into(), Json::u64(c.line_first_touch)),
        ("line_transfer".into(), Json::u64(c.line_transfer)),
        ("cas".into(), Json::u64(c.cas)),
        ("xbegin".into(), Json::u64(c.xbegin)),
        ("xend".into(), Json::u64(c.xend)),
        ("abort_penalty".into(), Json::u64(c.abort_penalty)),
        ("backoff_base".into(), Json::u64(c.backoff_base)),
        ("backoff_cap".into(), Json::u64(c.backoff_cap)),
        ("op_overhead".into(), Json::u64(c.op_overhead)),
        ("alu".into(), Json::u64(c.alu)),
        ("lock_acquire".into(), Json::u64(c.lock_acquire)),
        ("lock_release".into(), Json::u64(c.lock_release)),
        ("spin_iter".into(), Json::u64(c.spin_iter)),
        (
            "write_capacity_lines".into(),
            Json::u64(c.write_capacity_lines as u64),
        ),
        (
            "read_capacity_lines".into(),
            Json::u64(c.read_capacity_lines as u64),
        ),
        (
            "spurious_abort_per_cycle".into(),
            Json::Num(c.spurious_abort_per_cycle),
        ),
    ])
}

fn aborts_json(a: &AbortCounts, ops: u64) -> Json {
    let ops = ops.max(1) as f64;
    Json::Obj(vec![
        ("true_same_record".into(), Json::u64(a.true_same_record)),
        (
            "false_different_record".into(),
            Json::u64(a.false_different_record),
        ),
        ("false_metadata".into(), Json::u64(a.false_metadata)),
        ("false_structure".into(), Json::u64(a.false_structure)),
        (
            "unclassified_conflict".into(),
            Json::u64(a.unclassified_conflict),
        ),
        ("capacity".into(), Json::u64(a.capacity)),
        ("explicit".into(), Json::u64(a.explicit)),
        ("spurious".into(), Json::u64(a.spurious)),
        ("fallback_locked".into(), Json::u64(a.fallback_locked)),
        ("total".into(), Json::u64(a.total())),
        ("per_op".into(), Json::Num(a.total() as f64 / ops)),
        (
            "leaf_level_conflicts".into(),
            Json::u64(a.leaf_level_conflicts()),
        ),
    ])
}

/// The metrics block of one run entry. Public so bespoke binaries (e.g.
/// the memory audit) can embed metrics into their own documents.
pub fn metrics_json(m: &RunMetrics) -> Json {
    let s = &m.stats;
    let lat = &m.latency;
    let attempts = s.attempts.max(1) as f64;
    Json::Obj(vec![
        ("threads".into(), Json::u64(m.threads as u64)),
        ("total_ops".into(), Json::u64(m.total_ops)),
        ("elapsed_secs".into(), Json::Num(m.elapsed_secs)),
        ("throughput".into(), Json::Num(m.throughput)),
        ("throughput_mops".into(), Json::Num(m.mops())),
        ("aborts".into(), aborts_json(&m.aborts, m.total_ops)),
        ("aborts_per_op".into(), Json::Num(m.aborts_per_op)),
        (
            "wasted_cycle_fraction".into(),
            Json::Num(m.wasted_cycle_fraction),
        ),
        ("accesses_per_op".into(), Json::Num(m.accesses_per_op)),
        ("fallbacks_per_op".into(), Json::Num(m.fallbacks_per_op)),
        (
            "fallback_rate".into(),
            Json::Num(s.fallbacks as f64 / attempts),
        ),
        (
            "stages".into(),
            Json::Obj(vec![
                ("attempts".into(), Json::u64(s.attempts)),
                ("commits".into(), Json::u64(s.commits)),
                ("fallbacks".into(), Json::u64(s.fallbacks)),
                ("backoffs".into(), Json::u64(s.backoffs)),
                ("cycles_backoff".into(), Json::u64(s.cycles_backoff)),
                ("cycles_lock_wait".into(), Json::u64(s.cycles_lock_wait)),
                (
                    "cycles_fallback_wait".into(),
                    Json::u64(s.cycles_fallback_wait),
                ),
                ("ccm_bypass_flips".into(), Json::u64(s.ccm_bypass_flips)),
                ("optimistic_retries".into(), Json::u64(s.optimistic_retries)),
                ("cycles_total".into(), Json::u64(s.cycles_total)),
                ("cycles_wasted".into(), Json::u64(s.cycles_wasted)),
                (
                    "measure_start_cycles".into(),
                    match s.measure_start_cycles {
                        Some(v) => Json::u64(v),
                        None => Json::Null,
                    },
                ),
                ("mem_accesses".into(), Json::u64(s.mem_accesses)),
                ("cas_ops".into(), Json::u64(s.cas_ops)),
            ]),
        ),
        (
            "latency".into(),
            Json::Obj(vec![
                ("count".into(), Json::u64(lat.count())),
                ("mean".into(), Json::Num(lat.mean())),
                ("p50".into(), Json::u64(lat.quantile(0.50))),
                ("p90".into(), Json::u64(lat.quantile(0.90))),
                ("p99".into(), Json::u64(lat.quantile(0.99))),
                ("p999".into(), Json::u64(lat.quantile(0.999))),
                ("max".into(), Json::u64(lat.max())),
                (
                    "buckets".into(),
                    Json::Arr(
                        lat.nonzero_buckets()
                            .into_iter()
                            .map(|(floor, count)| {
                                Json::Arr(vec![Json::u64(floor), Json::u64(count)])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

fn entry_json(e: &RunEntry) -> Json {
    let mut fields = vec![
        ("system".into(), Json::str(&e.system)),
        ("x".into(), Json::str(&e.x)),
        (
            "config".into(),
            Json::Obj(vec![
                ("threads".into(), Json::u64(e.cfg.threads as u64)),
                ("ops_per_thread".into(), Json::u64(e.cfg.ops_per_thread)),
                ("warmup_ops".into(), Json::u64(e.cfg.warmup_ops)),
                ("seed".into(), Json::u64(e.cfg.seed)),
                ("policy".into(), Json::str(e.spec.policy.label())),
            ]),
        ),
        ("spec".into(), spec_json(&e.spec)),
        ("metrics".into(), metrics_json(&e.metrics)),
    ];
    if !e.extra.is_empty() {
        fields.push((
            "extra".into(),
            Json::Obj(
                e.extra
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                    .collect(),
            ),
        ));
    }
    Json::Obj(fields)
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// outside a git checkout.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

impl RunReport {
    pub fn new(figure: impl Into<String>, title: impl Into<String>, cost: CostModel) -> Self {
        RunReport {
            figure: figure.into(),
            title: title.into(),
            cost,
            runs: Vec::new(),
        }
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::u64(SCHEMA_VERSION)),
            ("figure".into(), Json::str(&self.figure)),
            ("title".into(), Json::str(&self.title)),
            ("git".into(), Json::str(git_describe())),
            (
                "bench_scale".into(),
                Json::Num(
                    std::env::var("EUNO_BENCH_SCALE")
                        .ok()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(1.0),
                ),
            ),
            ("cost_model".into(), cost_json(&self.cost)),
            (
                "runs".into(),
                Json::Arr(self.runs.iter().map(entry_json).collect()),
            ),
        ])
    }

    /// Serialize, self-validate, and write to `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let text = self.to_json().to_pretty();
        validate_report(&text).map_err(std::io::Error::other)?;
        std::fs::write(path, text)
    }
}

/// The report file that belongs next to a figure's CSV:
/// `<csv dir>/BENCH_<figure>.json`.
pub fn report_path_for(csv_path: &str, figure: &str) -> PathBuf {
    let dir = Path::new(csv_path).parent().unwrap_or(Path::new("."));
    dir.join(format!("BENCH_{figure}.json"))
}

// ============================ schema check ============================

const RUN_METRIC_KEYS: &[&str] = &[
    "threads",
    "total_ops",
    "elapsed_secs",
    "throughput",
    "throughput_mops",
    "aborts",
    "aborts_per_op",
    "wasted_cycle_fraction",
    "fallbacks_per_op",
    "stages",
    "latency",
];

const ABORT_KEYS: &[&str] = &[
    "true_same_record",
    "false_different_record",
    "false_metadata",
    "false_structure",
    "capacity",
    "explicit",
    "spurious",
    "fallback_locked",
    "total",
    "per_op",
];

const STAGE_KEYS: &[&str] = &[
    "attempts",
    "commits",
    "fallbacks",
    "backoffs",
    "cycles_backoff",
    "cycles_lock_wait",
    "cycles_fallback_wait",
    "ccm_bypass_flips",
];

const LATENCY_KEYS: &[&str] = &["count", "mean", "p50", "p99", "p999", "max"];

fn require<'j>(obj: &'j Json, key: &str, at: &str) -> Result<&'j Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("{at}: missing key {key:?}"))
}

fn require_keys(obj: &Json, keys: &[&str], at: &str) -> Result<(), String> {
    for k in keys {
        require(obj, k, at)?;
    }
    Ok(())
}

/// Parse `text` as JSON and check it against the run-report schema
/// (DESIGN.md §11): provenance at the top, and per run a config, a spec,
/// per-cause aborts, stage counts and latency quantiles.
pub fn validate_report(text: &str) -> Result<(), String> {
    let doc = Json::parse(text)?;
    let at = "report";
    require(&doc, "schema_version", at)?
        .as_f64()
        .filter(|&v| v == SCHEMA_VERSION as f64)
        .ok_or(format!("report: schema_version must be {SCHEMA_VERSION}"))?;
    require(&doc, "figure", at)?
        .as_str()
        .ok_or("report: figure must be a string")?;
    require(&doc, "git", at)?
        .as_str()
        .ok_or("report: git must be a string")?;
    let cost = require(&doc, "cost_model", at)?;
    require_keys(
        cost,
        &["freq_hz", "line_transfer", "abort_penalty", "op_overhead"],
        "cost_model",
    )?;
    let runs = require(&doc, "runs", at)?
        .as_arr()
        .ok_or("report: runs must be an array")?;
    if runs.is_empty() {
        return Err("report: runs is empty".into());
    }
    for (i, run) in runs.iter().enumerate() {
        let at = format!("runs[{i}]");
        require(run, "system", &at)?
            .as_str()
            .ok_or(format!("{at}: system must be a string"))?;
        require(run, "x", &at)?;
        let config = require(run, "config", &at)?;
        require_keys(
            config,
            &["threads", "ops_per_thread", "warmup_ops", "seed", "policy"],
            &format!("{at}.config"),
        )?;
        let spec = require(run, "spec", &at)?;
        require_keys(
            spec,
            &["key_range", "dist", "mix", "policy"],
            &format!("{at}.spec"),
        )?;
        let metrics = require(run, "metrics", &at)?;
        require_keys(metrics, RUN_METRIC_KEYS, &format!("{at}.metrics"))?;
        require_keys(
            require(metrics, "aborts", &at)?,
            ABORT_KEYS,
            &format!("{at}.metrics.aborts"),
        )?;
        require_keys(
            require(metrics, "stages", &at)?,
            STAGE_KEYS,
            &format!("{at}.metrics.stages"),
        )?;
        require_keys(
            require(metrics, "latency", &at)?,
            LATENCY_KEYS,
            &format!("{at}.metrics.latency"),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;
    use euno_htm::ThreadStats;

    fn sample_metrics() -> RunMetrics {
        let mut hist = LatencyHistogram::new();
        for v in [900u64, 1_200, 2_000, 40_000] {
            hist.record(v);
        }
        let t = ThreadStats {
            ops: 4,
            commits: 4,
            attempts: 6,
            backoffs: 2,
            cycles_backoff: 80,
            cycles_total: 50_000,
            measure_start_cycles: Some(1_000),
            ..Default::default()
        };
        RunMetrics::from_wall(vec![t], 0.001, hist)
    }

    fn sample_report() -> RunReport {
        let mut r = RunReport::new("figtest", "test figure", CostModel::default());
        r.runs.push(RunEntry {
            system: "Euno-B+Tree".into(),
            x: "0.9".into(),
            spec: WorkloadSpec::paper_default(0.9),
            cfg: RunConfig::default(),
            metrics: sample_metrics(),
            extra: vec![("structural_bytes".into(), 4096.0)],
        });
        r
    }

    #[test]
    fn json_roundtrip() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Num(1.5)),
            ("b".into(), Json::Arr(vec![Json::u64(7), Json::Null])),
            ("c \"quoted\"\n".into(), Json::str("näïve\tstring")),
            ("d".into(), Json::Bool(false)),
            ("e".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn parser_rejects_malformed() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,,]").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn integers_serialize_exactly() {
        let text = Json::u64(9_007_199_254_740_992 >> 1).to_pretty();
        assert_eq!(text.trim(), "4503599627370496");
        // Non-finite values degrade to null instead of emitting invalid JSON.
        assert_eq!(Json::Num(f64::NAN).to_pretty().trim(), "null");
    }

    #[test]
    fn report_serializes_and_validates() {
        let text = sample_report().to_json().to_pretty();
        validate_report(&text).unwrap();
        // And the document carries the headline telemetry.
        let doc = Json::parse(&text).unwrap();
        let run = &doc.get("runs").unwrap().as_arr().unwrap()[0];
        let lat = run.get("metrics").unwrap().get("latency").unwrap();
        assert_eq!(lat.get("max").unwrap().as_f64(), Some(40_000.0));
        assert_eq!(
            run.get("extra")
                .unwrap()
                .get("structural_bytes")
                .unwrap()
                .as_f64(),
            Some(4096.0)
        );
        assert_eq!(
            run.get("config").unwrap().get("policy").unwrap().as_str(),
            Some("dbx")
        );
    }

    #[test]
    fn validation_catches_missing_keys() {
        let mut doc = sample_report().to_json();
        // Drop a latency quantile from the only run.
        if let Json::Obj(fields) = &mut doc {
            let runs = fields.iter_mut().find(|(k, _)| k == "runs").unwrap();
            if let Json::Arr(runs) = &mut runs.1 {
                if let Json::Obj(run) = &mut runs[0] {
                    let m = run.iter_mut().find(|(k, _)| k == "metrics").unwrap();
                    if let Json::Obj(metrics) = &mut m.1 {
                        let l = metrics.iter_mut().find(|(k, _)| k == "latency").unwrap();
                        if let Json::Obj(lat) = &mut l.1 {
                            lat.retain(|(k, _)| k != "p999");
                        }
                    }
                }
            }
        }
        let err = validate_report(&doc.to_pretty()).unwrap_err();
        assert!(err.contains("p999"), "unexpected error: {err}");
        assert!(validate_report("{}").is_err());
        assert!(validate_report("not json").is_err());
    }

    #[test]
    fn report_path_lands_next_to_csv() {
        assert_eq!(
            report_path_for("results/fig01.csv", "fig01"),
            PathBuf::from("results/BENCH_fig01.json")
        );
        assert_eq!(
            report_path_for("lone.csv", "x"),
            PathBuf::from("BENCH_x.json")
        );
    }

    #[test]
    fn write_creates_validated_file() {
        let dir = std::env::temp_dir().join("euno_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_figtest.json");
        sample_report().write(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        validate_report(&text).unwrap();
        std::fs::remove_file(&path).ok();
    }
}
