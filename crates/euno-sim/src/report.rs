//! Structured run reports: one JSON document per figure regeneration.
//!
//! CSVs are fine for plotting one series, but they drop everything a
//! later perf PR needs to argue against: the abort breakdown, the latency
//! tail, the fallback/bypass behaviour Brown's HTM-template work shows
//! dominates HTM performance, and — crucially — the provenance (workload
//! spec, θ, seed, retry policy, cost-model constants, git revision) that
//! makes a number reproducible. Every `euno-bench` binary therefore
//! writes a `BENCH_<fig>.json` next to its CSV through this module.
//!
//! The JSON value type, writer and parser are in-tree: the container's
//! crate registry is unreachable (DESIGN.md §6), so no serde — the
//! implementation lives in `euno-trace` (shared with the Chrome trace
//! exporter) and is re-exported here as [`Json`]. The format is
//! documented in DESIGN.md §11 and checked by [`validate_report`], which
//! `scripts/bench.sh` and the `report_check` binary run over every
//! emitted report.

use std::path::{Path, PathBuf};

use euno_htm::{AbortCounts, CostModel};
use euno_metrics::{adaptation_lags, approx_quantile_from_buckets, Counter, Gauge, TimeSeries};
use euno_trace::{LeafCounters, LeafProfile};
use euno_workloads::{KeyDistribution, WorkloadSpec};

use crate::harness::RunConfig;
use crate::metrics::RunMetrics;

pub use euno_trace::Json;

/// Bumped whenever a required key is added, removed or renamed.
/// v2: three-path executor — `stages` gained `middles`, `middle_attempts`
/// and `cycles_middle_wait`; metrics gained `middle_rate`.
/// v3: `euno-metrics` — stage counts now come from the always-on metric
/// registry ([`RunMetrics::stages`]); metrics gained an optional
/// `timeseries` section (Δ-tick sampler windows, CCM flip events and
/// adaptation lags) validated when present.
pub const SCHEMA_VERSION: u64 = 3;

/// Hot-leaf rows kept in a report's `profile` section (the full table
/// stays available in-process via [`RunMetrics::profile`]).
pub const PROFILE_TOP_N: usize = 32;

// ============================ report model ============================

/// One measured run inside a report: the full provenance needed to
/// reproduce it plus the metrics it produced.
#[derive(Clone, Debug)]
pub struct RunEntry {
    /// System label ("Euno-B+Tree", "+Split HTM", …).
    pub system: String,
    /// The figure's x-axis value as a printable string (θ, threads, …).
    pub x: String,
    pub spec: WorkloadSpec,
    pub cfg: RunConfig,
    pub metrics: RunMetrics,
    /// Figure-specific extras (memory accounting, swept cost constants…).
    pub extra: Vec<(String, f64)>,
}

/// A full figure regeneration: provenance + every run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Stable figure id ("fig01", "ycsb", …) — names the output file.
    pub figure: String,
    /// Human title ("Figure 1: HTM-B+Tree throughput vs contention").
    pub title: String,
    /// Cost-model constants the runs were charged under.
    pub cost: CostModel,
    pub runs: Vec<RunEntry>,
}

fn dist_json(dist: &KeyDistribution) -> Json {
    let (name, param): (&str, Json) = match dist {
        KeyDistribution::Uniform => ("uniform", Json::Null),
        KeyDistribution::Zipfian { theta, scramble } => (
            "zipfian",
            Json::Obj(vec![
                ("theta".into(), Json::Num(*theta)),
                ("scramble".into(), Json::Bool(*scramble)),
            ]),
        ),
        KeyDistribution::SelfSimilar { h } => ("self_similar", Json::Num(*h)),
        KeyDistribution::Normal { sd_fraction } => ("normal", Json::Num(*sd_fraction)),
        KeyDistribution::Poisson { lambda } => ("poisson", Json::Num(*lambda)),
    };
    Json::Obj(vec![
        ("name".into(), Json::str(name)),
        ("param".into(), param),
    ])
}

fn spec_json(spec: &WorkloadSpec) -> Json {
    Json::Obj(vec![
        ("key_range".into(), Json::u64(spec.key_range)),
        ("dist".into(), dist_json(&spec.dist)),
        (
            "mix".into(),
            Json::Obj(vec![
                ("get".into(), Json::Num(spec.mix.get)),
                ("put".into(), Json::Num(spec.mix.put)),
                ("delete".into(), Json::Num(spec.mix.delete)),
                ("scan".into(), Json::Num(spec.mix.scan)),
            ]),
        ),
        ("scan_len".into(), Json::u64(spec.scan_len as u64)),
        ("preload".into(), Json::str(format!("{:?}", spec.preload))),
        ("policy".into(), Json::str(spec.policy.label())),
    ])
}

fn cost_json(c: &CostModel) -> Json {
    Json::Obj(vec![
        ("freq_hz".into(), Json::Num(c.freq_hz)),
        ("access_hit".into(), Json::u64(c.access_hit)),
        ("line_first_touch".into(), Json::u64(c.line_first_touch)),
        ("line_transfer".into(), Json::u64(c.line_transfer)),
        ("cas".into(), Json::u64(c.cas)),
        ("xbegin".into(), Json::u64(c.xbegin)),
        ("xend".into(), Json::u64(c.xend)),
        ("abort_penalty".into(), Json::u64(c.abort_penalty)),
        ("backoff_base".into(), Json::u64(c.backoff_base)),
        ("backoff_cap".into(), Json::u64(c.backoff_cap)),
        ("op_overhead".into(), Json::u64(c.op_overhead)),
        ("alu".into(), Json::u64(c.alu)),
        ("lock_acquire".into(), Json::u64(c.lock_acquire)),
        ("lock_release".into(), Json::u64(c.lock_release)),
        ("spin_iter".into(), Json::u64(c.spin_iter)),
        (
            "write_capacity_lines".into(),
            Json::u64(c.write_capacity_lines as u64),
        ),
        (
            "read_capacity_lines".into(),
            Json::u64(c.read_capacity_lines as u64),
        ),
        (
            "spurious_abort_per_cycle".into(),
            Json::Num(c.spurious_abort_per_cycle),
        ),
    ])
}

fn aborts_json(a: &AbortCounts, ops: u64) -> Json {
    let ops = ops.max(1) as f64;
    Json::Obj(vec![
        ("true_same_record".into(), Json::u64(a.true_same_record)),
        (
            "false_different_record".into(),
            Json::u64(a.false_different_record),
        ),
        ("false_metadata".into(), Json::u64(a.false_metadata)),
        ("false_structure".into(), Json::u64(a.false_structure)),
        (
            "unclassified_conflict".into(),
            Json::u64(a.unclassified_conflict),
        ),
        ("capacity".into(), Json::u64(a.capacity)),
        ("explicit".into(), Json::u64(a.explicit)),
        ("spurious".into(), Json::u64(a.spurious)),
        ("fallback_locked".into(), Json::u64(a.fallback_locked)),
        ("total".into(), Json::u64(a.total())),
        ("per_op".into(), Json::Num(a.total() as f64 / ops)),
        (
            "leaf_level_conflicts".into(),
            Json::u64(a.leaf_level_conflicts()),
        ),
    ])
}

/// The metrics block of one run entry. Public so bespoke binaries (e.g.
/// the memory audit) can embed metrics into their own documents.
pub fn metrics_json(m: &RunMetrics) -> Json {
    let s = &m.stats;
    let st = &m.stages;
    let lat = &m.latency;
    let attempts = st.attempts.max(1) as f64;
    let mut fields = vec![
        ("threads".into(), Json::u64(m.threads as u64)),
        ("total_ops".into(), Json::u64(m.total_ops)),
        ("elapsed_secs".into(), Json::Num(m.elapsed_secs)),
        ("throughput".into(), Json::Num(m.throughput)),
        ("throughput_mops".into(), Json::Num(m.mops())),
        ("aborts".into(), aborts_json(&m.aborts, m.total_ops)),
        ("aborts_per_op".into(), Json::Num(m.aborts_per_op)),
        (
            "wasted_cycle_fraction".into(),
            Json::Num(m.wasted_cycle_fraction),
        ),
        ("accesses_per_op".into(), Json::Num(m.accesses_per_op)),
        ("fallbacks_per_op".into(), Json::Num(m.fallbacks_per_op)),
        (
            "fallback_rate".into(),
            Json::Num(st.fallbacks as f64 / attempts),
        ),
        (
            "middle_rate".into(),
            Json::Num(st.middles as f64 / st.commits.max(1) as f64),
        ),
        (
            "stages".into(),
            Json::Obj(vec![
                ("attempts".into(), Json::u64(st.attempts)),
                ("commits".into(), Json::u64(st.commits)),
                ("middles".into(), Json::u64(st.middles)),
                ("middle_attempts".into(), Json::u64(st.middle_attempts)),
                ("fallbacks".into(), Json::u64(st.fallbacks)),
                ("backoffs".into(), Json::u64(st.backoffs)),
                ("cycles_backoff".into(), Json::u64(s.cycles_backoff)),
                ("cycles_lock_wait".into(), Json::u64(s.cycles_lock_wait)),
                ("cycles_middle_wait".into(), Json::u64(s.cycles_middle_wait)),
                (
                    "cycles_fallback_wait".into(),
                    Json::u64(s.cycles_fallback_wait),
                ),
                ("ccm_bypass_flips".into(), Json::u64(st.ccm_bypass_flips)),
                ("optimistic_retries".into(), Json::u64(s.optimistic_retries)),
                ("cycles_total".into(), Json::u64(s.cycles_total)),
                ("cycles_wasted".into(), Json::u64(s.cycles_wasted)),
                (
                    "measure_start_cycles".into(),
                    match s.measure_start_cycles {
                        Some(v) => Json::u64(v),
                        None => Json::Null,
                    },
                ),
                ("mem_accesses".into(), Json::u64(s.mem_accesses)),
                ("cas_ops".into(), Json::u64(s.cas_ops)),
            ]),
        ),
        (
            "latency".into(),
            Json::Obj(vec![
                ("count".into(), Json::u64(lat.count())),
                ("mean".into(), Json::Num(lat.mean())),
                ("p50".into(), Json::u64(lat.quantile(0.50))),
                ("p90".into(), Json::u64(lat.quantile(0.90))),
                ("p99".into(), Json::u64(lat.quantile(0.99))),
                ("p999".into(), Json::u64(lat.quantile(0.999))),
                ("max".into(), Json::u64(lat.max())),
                (
                    "buckets".into(),
                    Json::Arr(
                        lat.nonzero_buckets()
                            .into_iter()
                            .map(|(floor, count)| {
                                Json::Arr(vec![Json::u64(floor), Json::u64(count)])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ];
    if let Some(ts) = &m.timeseries {
        fields.push(("timeseries".into(), timeseries_json(m, ts)));
    }
    Json::Obj(fields)
}

/// The optional `timeseries` section: the Δ-tick sampler's windows (one
/// entry per consecutive-snapshot pair, nonzero counter deltas only, so
/// the document stays proportional to activity rather than to
/// `Counter::COUNT`), plus the CCM flip-event ledger and the adaptation
/// lags derived from it.
pub fn timeseries_json(m: &RunMetrics, ts: &TimeSeries) -> Json {
    let points: Vec<Json> = ts
        .windows()
        .map(|w| {
            let counters: Vec<(String, Json)> = Counter::ALL
                .iter()
                .filter(|c| w.counters[c.index()] > 0)
                .map(|c| (c.name().to_string(), Json::u64(w.counters[c.index()])))
                .collect();
            let gauges: Vec<(String, Json)> = Gauge::ALL
                .iter()
                .map(|g| (g.name().to_string(), Json::u64(w.gauges[g.index()])))
                .collect();
            let lat_count: u64 = w.hist.iter().sum();
            Json::Obj(vec![
                ("tick".into(), Json::u64(w.t1)),
                ("span".into(), Json::u64(w.span())),
                ("counters".into(), Json::Obj(counters)),
                ("gauges".into(), Json::Obj(gauges)),
                (
                    "latency".into(),
                    Json::Obj(vec![
                        ("count".into(), Json::u64(lat_count)),
                        (
                            "p50".into(),
                            Json::u64(approx_quantile_from_buckets(&w.hist, 0.50)),
                        ),
                        (
                            "p99".into(),
                            Json::u64(approx_quantile_from_buckets(&w.hist, 0.99)),
                        ),
                    ]),
                ),
                ("flip_events".into(), Json::u64(w.flip_events)),
            ])
        })
        .collect();
    let flips: Vec<Json> = m
        .flips
        .iter()
        .map(|e| {
            Json::Obj(vec![
                ("tick".into(), Json::u64(e.tick)),
                ("addr".into(), Json::str(format!("{:#x}", e.addr))),
                ("kind".into(), Json::str(e.kind.name())),
            ])
        })
        .collect();
    let lags = adaptation_lags(&m.flips);
    let answered: Vec<u64> = lags.iter().filter_map(|l| l.lag).collect();
    let adaptation = Json::Obj(vec![
        ("shifts".into(), Json::u64(lags.len() as u64)),
        ("answered".into(), Json::u64(answered.len() as u64)),
        (
            "lags".into(),
            Json::Arr(
                lags.iter()
                    .map(|l| {
                        Json::Obj(vec![
                            ("shift_tick".into(), Json::u64(l.shift_tick)),
                            (
                                "lag".into(),
                                match l.lag {
                                    Some(v) => Json::u64(v),
                                    None => Json::Null,
                                },
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "mean_lag".into(),
            if answered.is_empty() {
                Json::Null
            } else {
                Json::Num(answered.iter().sum::<u64>() as f64 / answered.len() as f64)
            },
        ),
        (
            "max_lag".into(),
            match answered.iter().max() {
                Some(&v) => Json::u64(v),
                None => Json::Null,
            },
        ),
    ]);
    Json::Obj(vec![
        ("tick_unit".into(), Json::str(m.tick_unit)),
        ("delta".into(), Json::u64(ts.delta())),
        ("samples".into(), Json::u64(ts.len() as u64)),
        ("dropped".into(), Json::u64(ts.dropped())),
        ("points".into(), Json::Arr(points)),
        ("flips".into(), Json::Arr(flips)),
        ("adaptation".into(), adaptation),
    ])
}

fn profile_counters_json(c: &LeafCounters) -> Vec<(String, Json)> {
    vec![
        ("aborts".into(), Json::u64(c.aborts)),
        ("lock_wait_cycles".into(), Json::u64(c.lock_wait_cycles)),
        ("lock_acquires".into(), Json::u64(c.lock_acquires)),
        ("ccm_flips".into(), Json::u64(c.ccm_flips)),
        ("splits".into(), Json::u64(c.splits)),
        ("merges".into(), Json::u64(c.merges)),
    ]
}

/// The `profile` section: the ranked hot-leaf table (top
/// [`PROFILE_TOP_N`] rows), the unattributed pool, and the event-stream
/// accounting. Leaf addresses are hex strings — raw pointers can exceed
/// the exact-f64 range that `Json::u64` guarantees.
pub fn profile_json(p: &LeafProfile) -> Json {
    let rows = p
        .top(PROFILE_TOP_N)
        .iter()
        .map(|(addr, c)| {
            let mut fields = vec![("addr".into(), Json::str(format!("{addr:#x}")))];
            fields.extend(profile_counters_json(c));
            Json::Obj(fields)
        })
        .collect();
    Json::Obj(vec![
        ("leaves".into(), Json::Arr(rows)),
        (
            "unattributed".into(),
            Json::Obj(profile_counters_json(&p.unattributed)),
        ),
        ("events_seen".into(), Json::u64(p.events_seen)),
        ("events_dropped".into(), Json::u64(p.events_dropped)),
    ])
}

fn entry_json(e: &RunEntry) -> Json {
    let mut fields = vec![
        ("system".into(), Json::str(&e.system)),
        ("x".into(), Json::str(&e.x)),
        (
            "config".into(),
            Json::Obj(vec![
                ("threads".into(), Json::u64(e.cfg.threads as u64)),
                ("ops_per_thread".into(), Json::u64(e.cfg.ops_per_thread)),
                ("warmup_ops".into(), Json::u64(e.cfg.warmup_ops)),
                ("seed".into(), Json::u64(e.cfg.seed)),
                ("policy".into(), Json::str(e.spec.policy.label())),
            ]),
        ),
        ("spec".into(), spec_json(&e.spec)),
        ("metrics".into(), metrics_json(&e.metrics)),
    ];
    if let Some(p) = &e.metrics.profile {
        fields.push(("profile".into(), profile_json(p)));
    }
    if !e.extra.is_empty() {
        fields.push((
            "extra".into(),
            Json::Obj(
                e.extra
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                    .collect(),
            ),
        ));
    }
    Json::Obj(fields)
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// outside a git checkout.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

impl RunReport {
    pub fn new(figure: impl Into<String>, title: impl Into<String>, cost: CostModel) -> Self {
        RunReport {
            figure: figure.into(),
            title: title.into(),
            cost,
            runs: Vec::new(),
        }
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::u64(SCHEMA_VERSION)),
            ("figure".into(), Json::str(&self.figure)),
            ("title".into(), Json::str(&self.title)),
            ("git".into(), Json::str(git_describe())),
            (
                "bench_scale".into(),
                Json::Num(
                    std::env::var("EUNO_BENCH_SCALE")
                        .ok()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(1.0),
                ),
            ),
            ("cost_model".into(), cost_json(&self.cost)),
            (
                "runs".into(),
                Json::Arr(self.runs.iter().map(entry_json).collect()),
            ),
        ])
    }

    /// Serialize, self-validate, and write to `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let text = self.to_json().to_pretty();
        validate_report(&text).map_err(std::io::Error::other)?;
        std::fs::write(path, text)
    }
}

/// The report file that belongs next to a figure's CSV:
/// `<csv dir>/BENCH_<figure>.json`.
pub fn report_path_for(csv_path: &str, figure: &str) -> PathBuf {
    let dir = Path::new(csv_path).parent().unwrap_or(Path::new("."));
    dir.join(format!("BENCH_{figure}.json"))
}

// ============================ schema check ============================

const RUN_METRIC_KEYS: &[&str] = &[
    "threads",
    "total_ops",
    "elapsed_secs",
    "throughput",
    "throughput_mops",
    "aborts",
    "aborts_per_op",
    "wasted_cycle_fraction",
    "fallbacks_per_op",
    "fallback_rate",
    "middle_rate",
    "stages",
    "latency",
];

const ABORT_KEYS: &[&str] = &[
    "true_same_record",
    "false_different_record",
    "false_metadata",
    "false_structure",
    "capacity",
    "explicit",
    "spurious",
    "fallback_locked",
    "total",
    "per_op",
];

const STAGE_KEYS: &[&str] = &[
    "attempts",
    "commits",
    "middles",
    "middle_attempts",
    "fallbacks",
    "backoffs",
    "cycles_backoff",
    "cycles_lock_wait",
    "cycles_middle_wait",
    "cycles_fallback_wait",
    "ccm_bypass_flips",
];

const LATENCY_KEYS: &[&str] = &["count", "mean", "p50", "p99", "p999", "max"];

const TIMESERIES_KEYS: &[&str] = &[
    "tick_unit",
    "delta",
    "samples",
    "dropped",
    "points",
    "flips",
    "adaptation",
];

const TIMESERIES_POINT_KEYS: &[&str] = &["tick", "span", "counters", "gauges", "latency"];

const ADAPTATION_KEYS: &[&str] = &["shifts", "answered", "lags", "mean_lag", "max_lag"];

const PROFILE_COUNTER_KEYS: &[&str] = &[
    "aborts",
    "lock_wait_cycles",
    "lock_acquires",
    "ccm_flips",
    "splits",
    "merges",
];

fn require<'j>(obj: &'j Json, key: &str, at: &str) -> Result<&'j Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("{at}: missing key {key:?}"))
}

fn require_keys(obj: &Json, keys: &[&str], at: &str) -> Result<(), String> {
    for k in keys {
        require(obj, k, at)?;
    }
    Ok(())
}

/// Parse `text` as JSON and check it against the run-report schema
/// (DESIGN.md §11): provenance at the top, and per run a config, a spec,
/// per-cause aborts, stage counts and latency quantiles.
pub fn validate_report(text: &str) -> Result<(), String> {
    let doc = Json::parse(text)?;
    let at = "report";
    require(&doc, "schema_version", at)?
        .as_f64()
        .filter(|&v| v == SCHEMA_VERSION as f64)
        .ok_or(format!("report: schema_version must be {SCHEMA_VERSION}"))?;
    require(&doc, "figure", at)?
        .as_str()
        .ok_or("report: figure must be a string")?;
    require(&doc, "git", at)?
        .as_str()
        .ok_or("report: git must be a string")?;
    let cost = require(&doc, "cost_model", at)?;
    require_keys(
        cost,
        &["freq_hz", "line_transfer", "abort_penalty", "op_overhead"],
        "cost_model",
    )?;
    let runs = require(&doc, "runs", at)?
        .as_arr()
        .ok_or("report: runs must be an array")?;
    if runs.is_empty() {
        return Err("report: runs is empty".into());
    }
    for (i, run) in runs.iter().enumerate() {
        let at = format!("runs[{i}]");
        require(run, "system", &at)?
            .as_str()
            .ok_or(format!("{at}: system must be a string"))?;
        require(run, "x", &at)?;
        let config = require(run, "config", &at)?;
        require_keys(
            config,
            &["threads", "ops_per_thread", "warmup_ops", "seed", "policy"],
            &format!("{at}.config"),
        )?;
        let spec = require(run, "spec", &at)?;
        require_keys(
            spec,
            &["key_range", "dist", "mix", "policy"],
            &format!("{at}.spec"),
        )?;
        let metrics = require(run, "metrics", &at)?;
        require_keys(metrics, RUN_METRIC_KEYS, &format!("{at}.metrics"))?;
        require_keys(
            require(metrics, "aborts", &at)?,
            ABORT_KEYS,
            &format!("{at}.metrics.aborts"),
        )?;
        require_keys(
            require(metrics, "stages", &at)?,
            STAGE_KEYS,
            &format!("{at}.metrics.stages"),
        )?;
        require_keys(
            require(metrics, "latency", &at)?,
            LATENCY_KEYS,
            &format!("{at}.metrics.latency"),
        )?;
        if let Some(ts) = metrics.get("timeseries") {
            validate_timeseries(ts, &format!("{at}.metrics.timeseries"))?;
        }
        if let Some(profile) = run.get("profile") {
            validate_profile(profile, &format!("{at}.profile"))?;
        }
    }
    Ok(())
}

/// Check a run's optional `timeseries` section: sampler provenance, the
/// window points (ticks strictly increasing — cumulative snapshots never
/// regress), the flip ledger and the adaptation summary.
fn validate_timeseries(ts: &Json, at: &str) -> Result<(), String> {
    require_keys(ts, TIMESERIES_KEYS, at)?;
    require(ts, "tick_unit", at)?
        .as_str()
        .filter(|u| *u == "cycles" || *u == "us")
        .ok_or(format!("{at}: tick_unit must be \"cycles\" or \"us\""))?;
    let points = require(ts, "points", at)?
        .as_arr()
        .ok_or(format!("{at}: points must be an array"))?;
    let mut prev_tick = -1.0f64;
    for (i, p) in points.iter().enumerate() {
        let at = format!("{at}.points[{i}]");
        require_keys(p, TIMESERIES_POINT_KEYS, &at)?;
        let tick = require(p, "tick", &at)?
            .as_f64()
            .ok_or(format!("{at}: tick must be a number"))?;
        if tick <= prev_tick {
            return Err(format!("{at}: ticks not strictly increasing"));
        }
        prev_tick = tick;
    }
    for (i, f) in require(ts, "flips", at)?
        .as_arr()
        .ok_or(format!("{at}: flips must be an array"))?
        .iter()
        .enumerate()
    {
        require_keys(f, &["tick", "addr", "kind"], &format!("{at}.flips[{i}]"))?;
    }
    require_keys(
        require(ts, "adaptation", at)?,
        ADAPTATION_KEYS,
        &format!("{at}.adaptation"),
    )?;
    Ok(())
}

/// Check a run's optional `profile` section: stream accounting, the
/// unattributed pool, and a leaves table whose rows carry every counter
/// and stay ranked hottest-first (non-increasing abort counts).
fn validate_profile(profile: &Json, at: &str) -> Result<(), String> {
    require_keys(profile, &["events_seen", "events_dropped"], at)?;
    require_keys(
        require(profile, "unattributed", at)?,
        PROFILE_COUNTER_KEYS,
        &format!("{at}.unattributed"),
    )?;
    let leaves = require(profile, "leaves", at)?
        .as_arr()
        .ok_or(format!("{at}: leaves must be an array"))?;
    let mut prev_aborts = f64::INFINITY;
    for (i, row) in leaves.iter().enumerate() {
        let at = format!("{at}.leaves[{i}]");
        require(row, "addr", &at)?
            .as_str()
            .filter(|s| s.starts_with("0x"))
            .ok_or(format!("{at}: addr must be a hex string"))?;
        require_keys(row, PROFILE_COUNTER_KEYS, &at)?;
        let aborts = require(row, "aborts", &at)?
            .as_f64()
            .ok_or(format!("{at}: aborts must be a number"))?;
        if aborts > prev_aborts {
            return Err(format!("{at}: table not ranked (aborts increase)"));
        }
        prev_aborts = aborts;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;
    use euno_htm::ThreadStats;
    use euno_metrics::{ExecStages, FlipEvent, FlipKind, Registry};

    fn sample_metrics() -> RunMetrics {
        let mut hist = LatencyHistogram::new();
        for v in [900u64, 1_200, 2_000, 40_000] {
            hist.record(v);
        }
        let t = ThreadStats {
            ops: 4,
            cycles_backoff: 80,
            cycles_total: 50_000,
            measure_start_cycles: Some(1_000),
            ..Default::default()
        };
        let stages = ExecStages {
            attempts: 6,
            commits: 4,
            backoffs: 2,
            ..Default::default()
        };
        RunMetrics::from_wall(vec![t], stages, 0.001, hist)
    }

    fn sample_report() -> RunReport {
        let mut r = RunReport::new("figtest", "test figure", CostModel::default());
        r.runs.push(RunEntry {
            system: "Euno-B+Tree".into(),
            x: "0.9".into(),
            spec: WorkloadSpec::paper_default(0.9),
            cfg: RunConfig::default(),
            metrics: sample_metrics(),
            extra: vec![("structural_bytes".into(), 4096.0)],
        });
        r
    }

    #[test]
    fn profile_section_serializes_and_validates() {
        let mut report = sample_report();
        let hot = LeafCounters {
            aborts: 10,
            lock_wait_cycles: 900,
            lock_acquires: 4,
            ccm_flips: 1,
            splits: 1,
            merges: 0,
        };
        let warm = LeafCounters {
            aborts: 3,
            ..Default::default()
        };
        report.runs[0].metrics.profile = Some(LeafProfile {
            leaves: vec![(0x7f00_0000_1000, hot), (0x7f00_0000_2000, warm)],
            unattributed: LeafCounters {
                aborts: 2,
                ..Default::default()
            },
            events_seen: 20,
            events_dropped: 1,
        });
        let text = report.to_json().to_pretty();
        validate_report(&text).unwrap();
        let doc = Json::parse(&text).unwrap();
        let profile = doc.get("runs").unwrap().as_arr().unwrap()[0]
            .get("profile")
            .unwrap();
        let rows = profile.get("leaves").unwrap().as_arr().unwrap();
        assert_eq!(
            rows[0].get("addr").unwrap().as_str(),
            Some("0x7f0000001000")
        );
        assert_eq!(rows[0].get("aborts").unwrap().as_f64(), Some(10.0));
        assert_eq!(profile.get("events_dropped").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn unranked_profile_table_is_rejected() {
        let mut report = sample_report();
        let cold = LeafCounters {
            aborts: 1,
            ..Default::default()
        };
        let hot = LeafCounters {
            aborts: 5,
            ..Default::default()
        };
        // Deliberately out of order: validation must catch it.
        report.runs[0].metrics.profile = Some(LeafProfile {
            leaves: vec![(0x1000, cold), (0x2000, hot)],
            unattributed: LeafCounters::default(),
            events_seen: 6,
            events_dropped: 0,
        });
        let err = validate_report(&report.to_json().to_pretty()).unwrap_err();
        assert!(err.contains("not ranked"), "unexpected error: {err}");
    }

    #[test]
    fn report_serializes_and_validates() {
        let text = sample_report().to_json().to_pretty();
        validate_report(&text).unwrap();
        // And the document carries the headline telemetry.
        let doc = Json::parse(&text).unwrap();
        let run = &doc.get("runs").unwrap().as_arr().unwrap()[0];
        let lat = run.get("metrics").unwrap().get("latency").unwrap();
        assert_eq!(lat.get("max").unwrap().as_f64(), Some(40_000.0));
        assert_eq!(
            run.get("extra")
                .unwrap()
                .get("structural_bytes")
                .unwrap()
                .as_f64(),
            Some(4096.0)
        );
        assert_eq!(
            run.get("config").unwrap().get("policy").unwrap().as_str(),
            Some("dbx")
        );
    }

    #[test]
    fn validation_catches_missing_keys() {
        let mut doc = sample_report().to_json();
        // Drop a latency quantile from the only run.
        if let Json::Obj(fields) = &mut doc {
            let runs = fields.iter_mut().find(|(k, _)| k == "runs").unwrap();
            if let Json::Arr(runs) = &mut runs.1 {
                if let Json::Obj(run) = &mut runs[0] {
                    let m = run.iter_mut().find(|(k, _)| k == "metrics").unwrap();
                    if let Json::Obj(metrics) = &mut m.1 {
                        let l = metrics.iter_mut().find(|(k, _)| k == "latency").unwrap();
                        if let Json::Obj(lat) = &mut l.1 {
                            lat.retain(|(k, _)| k != "p999");
                        }
                    }
                }
            }
        }
        let err = validate_report(&doc.to_pretty()).unwrap_err();
        assert!(err.contains("p999"), "unexpected error: {err}");
        assert!(validate_report("{}").is_err());
        assert!(validate_report("not json").is_err());
    }

    #[test]
    fn timeseries_section_serializes_and_validates() {
        let mut report = sample_report();
        // Two sampled snapshots with activity in between → one window.
        let reg = Registry::new();
        let shard = reg.register_shard().unwrap();
        let mut ts = TimeSeries::new(100, 8);
        shard.add(Counter::Ops, 3);
        shard.record_latency(500);
        ts.sample(100, &reg);
        shard.add(Counter::Ops, 5);
        shard.add(Counter::Commits, 4);
        ts.sample(200, &reg);
        report.runs[0].metrics.timeseries = Some(ts);
        report.runs[0].metrics.flips = vec![
            FlipEvent {
                tick: 120,
                addr: 0,
                kind: FlipKind::ShiftMark,
            },
            FlipEvent {
                tick: 150,
                addr: 0xbeef,
                kind: FlipKind::ToProtect,
            },
        ];
        let text = report.to_json().to_pretty();
        validate_report(&text).unwrap();
        let doc = Json::parse(&text).unwrap();
        let section = doc.get("runs").unwrap().as_arr().unwrap()[0]
            .get("metrics")
            .unwrap()
            .get("timeseries")
            .unwrap()
            .clone();
        assert_eq!(section.get("tick_unit").unwrap().as_str(), Some("us"));
        let points = section.get("points").unwrap().as_arr().unwrap();
        assert_eq!(points.len(), 1);
        let counters = points[0].get("counters").unwrap();
        assert_eq!(counters.get("ops").unwrap().as_f64(), Some(5.0));
        assert_eq!(counters.get("commits").unwrap().as_f64(), Some(4.0));
        // Zero-delta counters are elided from the window object.
        assert!(counters.get("fallbacks").is_none());
        let adaptation = section.get("adaptation").unwrap();
        assert_eq!(adaptation.get("shifts").unwrap().as_f64(), Some(1.0));
        assert_eq!(adaptation.get("mean_lag").unwrap().as_f64(), Some(30.0));
    }

    #[test]
    fn nonmonotone_timeseries_ticks_are_rejected() {
        let mut report = sample_report();
        let reg = Registry::new();
        let _shard = reg.register_shard().unwrap();
        let mut ts = TimeSeries::new(10, 8);
        ts.sample(10, &reg);
        ts.sample(20, &reg);
        ts.sample(30, &reg);
        report.runs[0].metrics.timeseries = Some(ts);
        let mut doc = report.to_json();
        let text = doc.to_pretty();
        validate_report(&text).unwrap();
        // Corrupt the second point's tick below the first's.
        fn find<'j>(doc: &'j mut Json, key: &str) -> &'j mut Json {
            match doc {
                Json::Obj(fields) => &mut fields.iter_mut().find(|(k, _)| k == key).unwrap().1,
                _ => panic!("not an object"),
            }
        }
        let runs = find(&mut doc, "runs");
        if let Json::Arr(runs) = runs {
            let points = find(find(find(&mut runs[0], "metrics"), "timeseries"), "points");
            if let Json::Arr(points) = points {
                *find(&mut points[1], "tick") = Json::u64(5);
            }
        }
        let err = validate_report(&doc.to_pretty()).unwrap_err();
        assert!(err.contains("strictly increasing"), "unexpected: {err}");
    }

    #[test]
    fn report_path_lands_next_to_csv() {
        assert_eq!(
            report_path_for("results/fig01.csv", "fig01"),
            PathBuf::from("results/BENCH_fig01.json")
        );
        assert_eq!(
            report_path_for("lone.csv", "x"),
            PathBuf::from("BENCH_x.json")
        );
    }

    #[test]
    fn write_creates_validated_file() {
        let dir = std::env::temp_dir().join("euno_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_figtest.json");
        sample_report().write(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        validate_report(&text).unwrap();
        std::fs::remove_file(&path).ok();
    }
}
