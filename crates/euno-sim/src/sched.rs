//! The deterministic virtual-time scheduler.
//!
//! The host has one CPU core; the paper's machine has twenty. To measure
//! scalability and contention anyway, N *logical* threads advance on a
//! virtual cycle clock: the scheduler always resumes the thread with the
//! smallest clock, that thread executes its next operation to completion
//! (charging cycles for every instrumented access through its
//! [`ThreadCtx`]), and the engine decides transactional conflicts from the
//! *virtual interval overlap* of episodes (see `euno-htm`'s runtime).
//!
//! Running in start-time order makes the simulation deterministic for a
//! given seed — a property the test suite checks — while preserving the
//! statistics that drive every figure: operations of different logical
//! threads overlap in virtual time exactly as they would in wall time, and
//! overlap is what creates aborts, lock waits and coherence charges.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use euno_htm::{Mode, Runtime, ThreadCtx, ThreadStats};
use euno_metrics::{sample_due, Counter, ExecStages, TimeSeries};
use euno_trace::{EventKind, ThreadTrace, TraceBuf};

use crate::hist::LatencyHistogram;
use crate::metrics::RunMetrics;

/// A per-thread operation driver: run ONE operation; return `false` when
/// the thread has no more work.
pub type Driver<'a> = Box<dyn FnMut(&mut ThreadCtx) -> bool + 'a>;

/// Builder/executor for one virtual-time run.
pub struct VirtualScheduler<'a> {
    rt: Arc<Runtime>,
    threads: Vec<(ThreadCtx, Driver<'a>)>,
    /// Prune the engine's conflict window every this many events.
    prune_every: u64,
    /// When set, every thread gets a trace ring of this capacity and the
    /// scheduler emits a [`EventKind::SchedStep`] per dispatch; collected
    /// traces land in [`RunMetrics::trace`].
    trace_capacity: Option<usize>,
    /// When set, the scheduler snapshots the runtime's metric registry
    /// every `delta` virtual cycles into a ring of `capacity` snapshots;
    /// the series lands in [`RunMetrics::timeseries`]. Sampling charges no
    /// cycles and draws no randomness — the schedule is bit-identical with
    /// it on or off.
    sampling: Option<(u64, usize)>,
}

impl<'a> VirtualScheduler<'a> {
    pub fn new(rt: Arc<Runtime>) -> Self {
        assert_eq!(
            rt.mode(),
            Mode::Virtual,
            "VirtualScheduler requires a virtual-mode runtime"
        );
        VirtualScheduler {
            rt,
            threads: Vec::new(),
            prune_every: 64,
            trace_capacity: None,
            sampling: None,
        }
    }

    /// Give every thread a trace ring of `capacity` events (installed at
    /// the start of [`VirtualScheduler::run`], so it covers threads added
    /// before or after this call).
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace_capacity = Some(capacity);
    }

    /// Snapshot the metric registry every `delta` virtual cycles into a
    /// ring of `capacity` snapshots (see [`RunMetrics::timeseries`]).
    pub fn set_sampling(&mut self, delta: u64, capacity: usize) {
        self.sampling = Some((delta, capacity));
    }

    /// Register a logical thread with its own deterministic seed.
    pub fn add_thread(&mut self, seed: u64, driver: Driver<'a>) {
        let ctx = self.rt.thread(seed);
        self.threads.push((ctx, driver));
    }

    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Run every thread to completion; returns aggregated metrics.
    pub fn run(mut self) -> RunMetrics {
        if let Some(cap) = self.trace_capacity {
            for (ctx, _) in self.threads.iter_mut() {
                ctx.set_tracer(Box::new(TraceBuf::new(ctx.id, cap)));
            }
        }
        // Min-heap on (clock, index): equal clocks resolve by thread index,
        // keeping the schedule total-ordered and deterministic.
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        for (i, (ctx, _)) in self.threads.iter().enumerate() {
            heap.push(Reverse((ctx.clock, i)));
        }

        let mut events: u64 = 0;
        let mut makespan: u64 = 0;
        let mut latency = LatencyHistogram::new();
        let mut series = self
            .sampling
            .map(|(delta, cap)| TimeSeries::new(delta, cap));
        while let Some(Reverse((start, i))) = heap.pop() {
            events += 1;
            if events.is_multiple_of(self.prune_every) {
                // Nothing can start before `start` anymore: safe horizon.
                self.rt.virt_prune(start);
            }
            if let Some(ts) = series.as_mut() {
                // The popped start tick is the run's monotone virtual "now"
                // (threads resume in clock order), so it drives the Δ-tick
                // sampling cadence.
                if sample_due(ts, start) {
                    self.rt.publish_epoch_gauges();
                    ts.sample(start, self.rt.metrics());
                }
            }
            let (ctx, driver) = &mut self.threads[i];
            debug_assert_eq!(ctx.clock, start);
            ctx.trace(EventKind::SchedStep { clock: start });
            let ops_before = ctx.stats.ops;
            let more = driver(ctx);
            if ctx.stats.ops > ops_before {
                // One event = one operation: its latency is the clock span
                // (includes retries, lock waits, fallback serialization).
                latency.record(ctx.clock - start);
                ctx.metric_add(Counter::Ops, ctx.stats.ops - ops_before);
                ctx.metric_record_latency(ctx.clock - start);
            }
            makespan = makespan.max(ctx.clock);
            if more {
                heap.push(Reverse((ctx.clock, i)));
            } else {
                ctx.finish();
            }
        }

        let mut traces: Vec<ThreadTrace> = Vec::new();
        // Stage counts come from the scheduler's own thread shards (never
        // registry totals, which could include contexts other callers
        // registered on the same runtime).
        let mut stages = ExecStages::default();
        let per_thread: Vec<ThreadStats> = self
            .threads
            .iter_mut()
            .map(|(ctx, _)| {
                ctx.finish();
                if let Some(buf) = ctx.take_tracer() {
                    traces.push(buf.into_thread_trace());
                }
                stages.merge(&ctx.exec_stages());
                ctx.stats.clone()
            })
            .collect();
        if let Some(ts) = series.as_mut() {
            // Settle snapshot at the makespan so the series always closes
            // with the final totals.
            self.rt.publish_epoch_gauges();
            ts.sample(makespan, self.rt.metrics());
        }
        let mut m = RunMetrics::from_virtual_with_latency(
            per_thread,
            stages,
            makespan,
            &self.rt.cost,
            latency,
        );
        m.timeseries = series;
        m.flips = self.rt.metrics().flips().events();
        if self.trace_capacity.is_some() {
            m.trace = Some(traces);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euno_htm::{RetryPolicy, TxCell};

    /// One counter per cache line, so "cold" access patterns really are
    /// conflict-free.
    #[repr(align(64))]
    struct PaddedCell(TxCell<u64>);

    /// Toy shared structure: an HTM-protected counter array.
    struct Counters {
        fb: TxCell<u64>,
        cells: Vec<PaddedCell>,
    }

    impl Counters {
        fn new(n: usize) -> Self {
            Counters {
                fb: TxCell::new(0),
                cells: (0..n).map(|_| PaddedCell(TxCell::new(0))).collect(),
            }
        }

        fn bump(&self, ctx: &mut ThreadCtx, i: usize) {
            ctx.htm_execute(&self.fb, &RetryPolicy::default(), |tx| {
                let v = tx.read(&self.cells[i].0)?;
                tx.write(&self.cells[i].0, v + 1)
            });
            ctx.stats.ops += 1;
        }
    }

    fn run_once(threads: usize, ops: usize, hot: bool, seed: u64) -> (RunMetrics, Vec<u64>) {
        let rt = Runtime::new_virtual();
        let counters = Arc::new(Counters::new(64));
        let mut sched = VirtualScheduler::new(Arc::clone(&rt));
        for t in 0..threads {
            let c = Arc::clone(&counters);
            let mut left = ops;
            let mut k = t;
            sched.add_thread(
                seed + t as u64,
                Box::new(move |ctx| {
                    if left == 0 {
                        return false;
                    }
                    left -= 1;
                    // hot: everyone hammers cell 0; cold: per-thread private cell
                    let i = if hot { 0 } else { t };
                    let _ = k;
                    k += 1;
                    c.bump(ctx, i);
                    true
                }),
            );
        }
        let m = sched.run();
        let values = counters.cells.iter().map(|c| c.0.load_plain()).collect();
        (m, values)
    }

    #[test]
    fn all_ops_complete_and_counts_add_up() {
        let (m, values) = run_once(4, 100, true, 1);
        assert_eq!(m.total_ops, 400);
        assert_eq!(values[0], 400, "no lost updates despite aborts");
        assert!(m.throughput > 0.0);
    }

    #[test]
    fn hot_cell_causes_aborts_cold_cells_do_not() {
        let (hot, _) = run_once(8, 200, true, 2);
        let (cold, _) = run_once(8, 200, false, 2);
        assert!(
            hot.aborts_per_op > cold.aborts_per_op * 3.0,
            "hot {} vs cold {}",
            hot.aborts_per_op,
            cold.aborts_per_op
        );
        assert!(hot.throughput < cold.throughput);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let (a, va) = run_once(6, 150, true, 7);
        let (b, vb) = run_once(6, 150, true, 7);
        assert_eq!(va, vb);
        assert_eq!(a.total_ops, b.total_ops);
        assert_eq!(a.stats.cycles_total, b.stats.cycles_total);
        assert_eq!(a.aborts.total(), b.aborts.total());
        assert_eq!(a.elapsed_secs, b.elapsed_secs);
    }

    #[test]
    fn different_seed_different_schedule() {
        // A driver that picks its target cell from the thread RNG: seeds
        // must change the schedule and therefore the conflict pattern.
        fn run_rng(seed: u64) -> u64 {
            let rt = Runtime::new_virtual();
            let counters = Arc::new(Counters::new(8));
            let mut sched = VirtualScheduler::new(Arc::clone(&rt));
            for t in 0..6 {
                let c = Arc::clone(&counters);
                let mut left = 200;
                sched.add_thread(
                    seed + t,
                    Box::new(move |ctx| {
                        if left == 0 {
                            return false;
                        }
                        left -= 1;
                        let i = (euno_rng::Rng::gen_range(ctx.rng(), 0..8usize)) % 8;
                        c.bump(ctx, i);
                        true
                    }),
                );
            }
            let m = sched.run();
            m.stats.cycles_total ^ m.aborts.total()
        }
        assert_ne!(run_rng(7), run_rng(8));
    }

    #[test]
    fn contended_throughput_does_not_scale_linearly() {
        let (one, _) = run_once(1, 400, true, 3);
        let (sixteen, _) = run_once(16, 400, true, 3);
        // 16 threads on one hot cell must deliver far less than 16×.
        assert!(
            sixteen.throughput < one.throughput * 8.0,
            "1thr {} vs 16thr {}",
            one.throughput,
            sixteen.throughput
        );
    }

    #[test]
    fn uncontended_throughput_scales() {
        let (one, _) = run_once(1, 400, false, 4);
        let (eight, _) = run_once(8, 400, false, 4);
        assert!(
            eight.throughput > one.throughput * 4.0,
            "1thr {} vs 8thr {}",
            one.throughput,
            eight.throughput
        );
    }

    #[test]
    #[should_panic(expected = "virtual-mode runtime")]
    fn rejects_concurrent_runtime() {
        let rt = Runtime::new_concurrent();
        let _ = VirtualScheduler::new(rt);
    }
}
