//! Experiment harness: preload a tree, run a YCSB-style workload against
//! any [`ConcurrentMap`] under either execution mode, return the metrics a
//! paper figure plots.

use std::sync::Arc;
use std::time::Instant;

use euno_htm::{
    AdaptiveBudget, AggressivePolicy, ConcurrentMap, DbxPolicy, Mode, RetryPolicy, RetryStrategy,
    Runtime, ThreadCtx, ThreadStats,
};
use euno_metrics::{sample_due, Counter, ExecStages, TimeSeries};
use euno_trace::{build_profile, codes, EventKind, ThreadTrace, TraceBuf};
use euno_workloads::{Op, OpStream, PolicyChoice, WorkloadSpec};

use crate::hist::LatencyHistogram;
use crate::metrics::RunMetrics;
use crate::sched::VirtualScheduler;

/// Configuration of one run (one data point of one figure).
#[derive(Clone, Debug)]
pub struct RunConfig {
    pub threads: usize,
    pub ops_per_thread: u64,
    pub seed: u64,
    /// Unmeasured operations each thread executes first to reach steady
    /// state (populating caches, splitting hot leaves).
    pub warmup_ops: u64,
    /// Per-thread trace-ring capacity in events; 0 = tracing off (the
    /// engine's emission points stay one never-taken branch each).
    pub trace_capacity: usize,
    /// Build the hot-leaf contention profile ([`RunMetrics::profile`])
    /// from the collected trace. Implies tracing at the default ring
    /// capacity when `trace_capacity` is 0.
    pub profile: bool,
    /// Metrics-sampler period: snapshot the registry every this many
    /// virtual cycles (virtual mode) or wall microseconds (concurrent
    /// mode) into [`RunMetrics::timeseries`]. 0 = sampling off.
    pub sample_every: u64,
    /// Snapshot-ring capacity; 0 = [`TimeSeries::DEFAULT_CAPACITY`].
    /// When the run outlives the ring the oldest snapshots are dropped
    /// (counted in the series), keeping memory bounded.
    pub sample_capacity: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: 16, // §2.3 / §5.2 measure at 16 threads
            ops_per_thread: 20_000,
            seed: 0x00eu64 ^ 0x5eed,
            warmup_ops: 4_000,
            trace_capacity: 0,
            profile: false,
            sample_every: 0,
            sample_capacity: 0,
        }
    }
}

impl RunConfig {
    /// The ring capacity to install, or `None` when the run traces
    /// nothing at all.
    pub fn effective_trace_capacity(&self) -> Option<usize> {
        match (self.trace_capacity, self.profile) {
            (0, false) => None,
            (0, true) => Some(euno_trace::DEFAULT_CAPACITY),
            (cap, _) => Some(cap),
        }
    }
}

/// Materialize a workload's [`PolicyChoice`] as a live retry strategy for
/// the transaction executor. The workload crate stays dependency-free
/// (pure data); this is the single place the name is bound to behavior.
pub fn strategy_for(choice: PolicyChoice) -> Arc<dyn RetryStrategy> {
    match choice {
        PolicyChoice::Dbx => Arc::new(DbxPolicy::default()),
        PolicyChoice::Aggressive => Arc::new(AggressivePolicy::default()),
        PolicyChoice::Adaptive => Arc::new(AdaptiveBudget::new(RetryPolicy::default())),
    }
}

/// Populate the tree with the workload's preload keys, single-threaded and
/// unmeasured. Returns the number of records inserted.
pub fn preload(map: &dyn ConcurrentMap, rt: &Arc<Runtime>, spec: &WorkloadSpec) -> u64 {
    let mut ctx = rt.thread(0x10ad_5eed);
    let mut n = 0;
    for key in spec.preload_keys() {
        map.put(&mut ctx, key, key ^ 0xabcd);
        n += 1;
    }
    n
}

/// Execute one operation against the map, charging the fixed per-op
/// overhead and counting it.
#[inline]
pub fn apply_op(
    map: &dyn ConcurrentMap,
    ctx: &mut ThreadCtx,
    op: Op,
    scan_buf: &mut Vec<(u64, u64)>,
) {
    let overhead = ctx.runtime().cost.op_overhead;
    ctx.charge(overhead);
    if ctx.tracing() {
        let (kind, key) = match op {
            Op::Get { key } => (codes::OP_GET, key),
            Op::Put { key, .. } => (codes::OP_PUT, key),
            Op::Delete { key } => (codes::OP_DELETE, key),
            Op::Scan { from, .. } => (codes::OP_SCAN, from),
        };
        ctx.trace(EventKind::OpBegin { kind, key });
    }
    match op {
        Op::Get { key } => {
            map.get(ctx, key);
        }
        Op::Put { key, value } => {
            map.put(ctx, key, value);
        }
        Op::Delete { key } => {
            map.delete(ctx, key);
        }
        Op::Scan { from, len } => {
            scan_buf.clear();
            map.scan(ctx, from, len, scan_buf);
        }
    }
    ctx.trace(EventKind::OpEnd);
    ctx.stats.ops += 1;
}

/// Run one unmeasured warmup operation: the clock contribution is kept
/// (it shapes the schedule) while ops/abort statistics — and the thread's
/// metric-shard counters — are rolled back so the measured metrics only
/// cover steady state.
#[inline]
pub fn apply_warmup_op(
    map: &dyn ConcurrentMap,
    ctx: &mut ThreadCtx,
    op: Op,
    scan_buf: &mut Vec<(u64, u64)>,
) {
    let saved = ctx.stats.clone();
    let mark = ctx.metrics_mark();
    apply_op(map, ctx, op, scan_buf);
    ctx.stats = saved;
    ctx.metrics_restore(&mark);
}

/// Run a workload in **virtual-time** mode and return the figure metrics.
///
/// The tree must have been built against the same `rt`. Preloading happens
/// here (single-threaded, unmeasured) unless `preloaded` is set.
pub fn run_virtual(
    map: &dyn ConcurrentMap,
    rt: &Arc<Runtime>,
    spec: &WorkloadSpec,
    cfg: &RunConfig,
) -> RunMetrics {
    assert_eq!(rt.mode(), Mode::Virtual);
    let mut sched = VirtualScheduler::new(Arc::clone(rt));
    if let Some(cap) = cfg.effective_trace_capacity() {
        sched.set_trace_capacity(cap);
    }
    if cfg.sample_every > 0 {
        let cap = match cfg.sample_capacity {
            0 => TimeSeries::DEFAULT_CAPACITY,
            c => c,
        };
        sched.set_sampling(cfg.sample_every, cap);
    }
    for t in 0..cfg.threads {
        let mut stream = OpStream::new(spec, t as u64, cfg.seed);
        let mut scan_buf: Vec<(u64, u64)> = Vec::new();
        let mut warmup_left = cfg.warmup_ops;
        let mut left = cfg.ops_per_thread;
        let map_ref: &dyn ConcurrentMap = map;
        sched.add_thread(
            cfg.seed.wrapping_add(t as u64),
            Box::new(move |ctx| {
                if warmup_left > 0 {
                    warmup_left -= 1;
                    let op = stream.next_op();
                    apply_warmup_op(map_ref, ctx, op, &mut scan_buf);
                    if warmup_left == 0 {
                        ctx.stats.measure_start_cycles = Some(ctx.clock);
                    }
                    return true;
                }
                if left == 0 {
                    return false;
                }
                left -= 1;
                let op = stream.next_op();
                apply_op(map_ref, ctx, op, &mut scan_buf);
                true
            }),
        );
    }
    let mut m = sched.run();
    attach_profile(&mut m, rt, cfg);
    // The run is quiescent: no participant is pinned, so two collects
    // (advance + mature) drain every node the workload retired. Without
    // this, memory snapshots taken after a run would report pending
    // garbage that is purely an artifact of where the opportunistic
    // collection cadence stopped.
    rt.epoch().collect();
    rt.epoch().collect();
    m
}

/// Build the hot-leaf profile from a run's collected traces, resolving
/// event addresses through the runtime's object registry (populated by
/// `EunoLeaf::register`). Public for harnesses that drive a
/// [`VirtualScheduler`] directly instead of going through [`run_virtual`].
pub fn attach_profile(m: &mut RunMetrics, rt: &Arc<Runtime>, cfg: &RunConfig) {
    if !cfg.profile {
        return;
    }
    if let Some(traces) = &m.trace {
        m.profile = Some(build_profile(traces, |addr| rt.object_base_of(addr)));
    }
}

/// Run a workload with **real OS threads** (concurrent mode) and wall-clock
/// timing. Used by stress tests; on a many-core host this also gives
/// native throughput numbers.
///
/// Each thread records a per-operation latency histogram over its
/// cycle-charged clock (spins, retries and fallback serialization all
/// charge cycles in concurrent mode too); the merged histogram lands in
/// [`RunMetrics::latency`] exactly as in virtual mode.
pub fn run_concurrent(
    map: &dyn ConcurrentMap,
    rt: &Arc<Runtime>,
    spec: &WorkloadSpec,
    cfg: &RunConfig,
) -> RunMetrics {
    assert_eq!(rt.mode(), Mode::Concurrent);
    // All threads warm up, meet at a barrier, then the measured phase is
    // timed on its own. The metrics sampler (when on) joins the same
    // rendezvous so its tick 0 is the measured-phase start.
    let sampling = cfg.sample_every > 0;
    let barrier = std::sync::Barrier::new(cfg.threads + 1 + sampling as usize);
    let start_cell = std::sync::Mutex::new(Instant::now());
    let trace_cap = cfg.effective_trace_capacity();
    let done = std::sync::atomic::AtomicBool::new(false);
    let mut series: Option<TimeSeries> = None;
    let results: Vec<(
        ThreadStats,
        ExecStages,
        LatencyHistogram,
        Option<ThreadTrace>,
    )> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..cfg.threads {
            let rt = Arc::clone(rt);
            let spec = spec.clone();
            let cfg = cfg.clone();
            let map_ref: &dyn ConcurrentMap = map;
            let barrier = &barrier;
            handles.push(s.spawn(move || {
                let mut ctx = rt.thread(cfg.seed.wrapping_add(t as u64));
                if let Some(cap) = trace_cap {
                    ctx.set_tracer(Box::new(TraceBuf::new(ctx.id, cap)));
                }
                let mut stream = OpStream::new(&spec, t as u64, cfg.seed);
                let mut scan_buf = Vec::new();
                let mut latency = LatencyHistogram::new();
                for _ in 0..cfg.warmup_ops {
                    let op = stream.next_op();
                    apply_warmup_op(map_ref, &mut ctx, op, &mut scan_buf);
                }
                barrier.wait();
                ctx.stats.measure_start_cycles = Some(ctx.clock);
                for _ in 0..cfg.ops_per_thread {
                    let op = stream.next_op();
                    let before = ctx.clock;
                    apply_op(map_ref, &mut ctx, op, &mut scan_buf);
                    latency.record(ctx.clock - before);
                    ctx.metric_add(Counter::Ops, 1);
                    ctx.metric_record_latency(ctx.clock - before);
                }
                ctx.finish();
                let trace = ctx.take_tracer().map(|b| b.into_thread_trace());
                let stages = ctx.exec_stages();
                (ctx.stats, stages, latency, trace)
            }));
        }
        // Wall-clock sampler: one extra thread ticking every Δ µs from
        // the measured-phase start. It never touches the barrier (the
        // workers' rendezvous stays threads+1); it just snapshots the
        // shared registry until the workers finish.
        let sampler = sampling.then(|| {
            let rt = Arc::clone(rt);
            let delta = cfg.sample_every;
            let cap = match cfg.sample_capacity {
                0 => TimeSeries::DEFAULT_CAPACITY,
                c => c,
            };
            let done = &done;
            let barrier = &barrier;
            s.spawn(move || {
                let mut ts = TimeSeries::new(delta, cap);
                barrier.wait();
                let t0 = Instant::now();
                while !done.load(std::sync::atomic::Ordering::Acquire) {
                    let now = t0.elapsed().as_micros() as u64;
                    if sample_due(&mut ts, now) {
                        rt.publish_epoch_gauges();
                        ts.sample(now, rt.metrics());
                    }
                    std::thread::sleep(std::time::Duration::from_micros(delta.clamp(50, 1000)));
                }
                // Settle snapshot: close the series on the final totals.
                rt.publish_epoch_gauges();
                ts.sample(t0.elapsed().as_micros() as u64, rt.metrics());
                ts
            })
        });
        barrier.wait();
        *start_cell.lock().unwrap() = Instant::now();
        let results = handles.into_iter().map(|h| h.join().unwrap()).collect();
        done.store(true, std::sync::atomic::Ordering::Release);
        series = sampler.map(|h| h.join().unwrap());
        results
    });
    let elapsed = start_cell.lock().unwrap().elapsed().as_secs_f64();
    let mut latency = LatencyHistogram::new();
    let mut per_thread = Vec::with_capacity(results.len());
    let mut stages = ExecStages::default();
    let mut traces = Vec::new();
    for (stats, st, hist, trace) in results {
        latency.merge(&hist);
        per_thread.push(stats);
        stages.merge(&st);
        traces.extend(trace);
    }
    let mut m = RunMetrics::from_wall(per_thread, stages, elapsed, latency);
    m.timeseries = series;
    m.flips = rt.metrics().flips().events();
    if trace_cap.is_some() {
        m.trace = Some(traces);
    }
    attach_profile(&mut m, rt, cfg);
    m
}
