//! # euno-sim — deterministic virtual-time experiment harness
//!
//! Schedules N logical threads on a virtual cycle clock so the Eunomia
//! paper's 16-20-thread contention experiments can run (deterministically)
//! on any host, plus a real-OS-thread runner for correctness stress tests.
//!
//! The scheduler always resumes the logical thread with the smallest
//! virtual clock; operations overlap in virtual time, and the `euno-htm`
//! engine turns overlap × footprint collision into TSX-like aborts. See
//! DESIGN.md §2 for why this substitution preserves the paper's figures.

pub mod harness;
pub mod hist;
pub mod metrics;
pub mod report;
pub mod sched;

pub use harness::{
    apply_op, apply_warmup_op, attach_profile, preload, run_concurrent, run_virtual, strategy_for,
    RunConfig,
};
pub use hist::LatencyHistogram;
pub use metrics::RunMetrics;
pub use report::{profile_json, report_path_for, validate_report, Json, RunEntry, RunReport};
pub use sched::{Driver, VirtualScheduler};

// The trace toolkit, re-exported so bench binaries can export traces
// without a separate dependency edge.
pub use euno_trace::{
    build_profile, chrome_trace, folded_rollup, metrics_jsonl, validate_chrome_trace,
    validate_metrics_jsonl, LeafProfile, ThreadTrace, TraceBuf,
    DEFAULT_CAPACITY as DEFAULT_TRACE_CAPACITY,
};
