//! Integration tests for the experiment harness: workload driving,
//! metrics plumbing, latency collection and end-to-end determinism over a
//! minimal `ConcurrentMap`.

use euno_htm::{ConcurrentMap, RetryPolicy, Runtime, ThreadCtx, TxCell};
use euno_sim::{preload, run_concurrent, run_virtual, RunConfig};
use euno_workloads::{KeyDistribution, OpMix, Preload, WorkloadSpec};

/// One cache line of slots. Conflict footprints derive from *real heap
/// addresses* (LineId = addr/64), so which slots false-share depends on
/// where the allocator placed the storage — unless the storage is
/// line-aligned, like every real tree node in this repo (`repr(C,
/// align(64))`). Aligning makes the abort pattern a pure function of slot
/// indices, which the end-to-end determinism test below relies on.
#[repr(align(64))]
struct SlotLine([TxCell<u64>; 8]);

/// A deliberately naive HTM-protected open-addressing table: enough map to
/// exercise the harness without pulling in the tree crates.
struct ToyMap {
    fb: TxCell<u64>,
    keys: Vec<SlotLine>,
    vals: Vec<SlotLine>,
    capacity: usize,
    policy: RetryPolicy,
}

const EMPTY: u64 = u64::MAX;

impl ToyMap {
    fn new(capacity: usize) -> Self {
        assert_eq!(capacity % 8, 0);
        let line = |v: u64| SlotLine(std::array::from_fn(|_| TxCell::new(v)));
        ToyMap {
            fb: TxCell::new(0),
            keys: (0..capacity / 8).map(|_| line(EMPTY)).collect(),
            vals: (0..capacity / 8).map(|_| line(0)).collect(),
            capacity,
            policy: RetryPolicy::default(),
        }
    }

    fn key_at(&self, i: usize) -> &TxCell<u64> {
        &self.keys[i / 8].0[i % 8]
    }

    fn val_at(&self, i: usize) -> &TxCell<u64> {
        &self.vals[i / 8].0[i % 8]
    }

    fn slot_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E3779B97F4A7C15) % self.capacity as u64) as usize
    }
}

impl ConcurrentMap for ToyMap {
    fn get(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        let mut i = self.slot_of(key);
        ctx.htm_execute(&self.fb, &self.policy, |tx| {
            for _ in 0..self.capacity {
                let k = tx.read(self.key_at(i))?;
                if k == key {
                    return Ok(Some(tx.read(self.val_at(i))?));
                }
                if k == EMPTY {
                    return Ok(None);
                }
                i = (i + 1) % self.capacity;
            }
            Ok(None)
        })
        .value
    }

    fn put(&self, ctx: &mut ThreadCtx, key: u64, value: u64) -> Option<u64> {
        let mut i = self.slot_of(key);
        ctx.htm_execute(&self.fb, &self.policy, |tx| loop {
            let k = tx.read(self.key_at(i))?;
            if k == key {
                let old = tx.read(self.val_at(i))?;
                tx.write(self.val_at(i), value)?;
                return Ok(Some(old));
            }
            if k == EMPTY {
                tx.write(self.key_at(i), key)?;
                tx.write(self.val_at(i), value)?;
                return Ok(None);
            }
            i = (i + 1) % self.capacity;
        })
        .value
    }

    fn delete(&self, _ctx: &mut ThreadCtx, _key: u64) -> Option<u64> {
        None // open addressing: deletes unsupported in the toy
    }

    fn scan(
        &self,
        _ctx: &mut ThreadCtx,
        _from: u64,
        _count: usize,
        _out: &mut Vec<(u64, u64)>,
    ) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "ToyMap"
    }
}

fn toy_spec() -> WorkloadSpec {
    WorkloadSpec {
        key_range: 512,
        dist: KeyDistribution::Zipfian {
            theta: 0.9,
            scramble: false,
        },
        mix: OpMix::get_put(0.5),
        scan_len: 4,
        preload: Preload::None,
        policy: Default::default(),
    }
}

#[test]
fn virtual_harness_runs_and_fills_metrics() {
    let rt = Runtime::new_virtual();
    let map = ToyMap::new(4096);
    preload(&map, &rt, &toy_spec());
    rt.reset_dynamics();
    let cfg = RunConfig {
        threads: 8,
        ops_per_thread: 1_000,
        seed: 3,
        warmup_ops: 100,
        ..RunConfig::default()
    };
    let m = run_virtual(&map, &rt, &toy_spec(), &cfg);
    assert_eq!(m.threads, 8);
    assert_eq!(m.total_ops, 8_000);
    assert!(m.throughput > 0.0);
    assert!(m.accesses_per_op > 1.0);
    // Latency histogram is populated, sane, and consistent with ops.
    assert_eq!(m.latency.count(), 8_000);
    assert!(m.latency.quantile(0.5) > 0);
    assert!(m.latency.quantile(0.99) >= m.latency.quantile(0.5));
    assert!(m.latency.mean() > 0.0);
}

#[test]
fn virtual_harness_is_deterministic_end_to_end() {
    let run = || {
        let rt = Runtime::new_virtual();
        let map = ToyMap::new(4096);
        preload(&map, &rt, &toy_spec());
        rt.reset_dynamics();
        let cfg = RunConfig {
            threads: 6,
            ops_per_thread: 800,
            seed: 11,
            warmup_ops: 50,
            ..RunConfig::default()
        };
        let m = run_virtual(&map, &rt, &toy_spec(), &cfg);
        (
            m.total_ops,
            m.stats.cycles_total,
            m.aborts.total(),
            m.latency.quantile(0.99),
            m.elapsed_secs.to_bits(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn hot_zipfian_produces_contention_in_the_toy() {
    let rt = Runtime::new_virtual();
    let map = ToyMap::new(4096);
    preload(&map, &rt, &toy_spec());
    rt.reset_dynamics();
    let cfg = RunConfig {
        threads: 16,
        ops_per_thread: 1_500,
        seed: 4,
        warmup_ops: 200,
        ..RunConfig::default()
    };
    let m = run_virtual(&map, &rt, &toy_spec(), &cfg);
    assert!(
        m.aborts.total() > 0,
        "16 threads on 512 hot keys in one table must conflict"
    );
    // Tail latency shows the convoys the mean hides.
    assert!(m.latency.quantile(0.999) > 2 * m.latency.quantile(0.5));
}

#[test]
fn concurrent_harness_executes_all_ops() {
    let rt = Runtime::new_concurrent();
    let map = ToyMap::new(8192);
    preload(&map, &rt, &toy_spec());
    let cfg = RunConfig {
        threads: 4,
        ops_per_thread: 1_000,
        seed: 9,
        warmup_ops: 100,
        ..RunConfig::default()
    };
    let m = run_concurrent(&map, &rt, &toy_spec(), &cfg);
    assert_eq!(m.total_ops, 4_000);
    assert!(m.elapsed_secs > 0.0);
    // Wall-clock runs must carry a real latency histogram — one sample
    // per measured op, monotone quantiles, non-degenerate tail.
    // (Regression: from_wall used to fabricate an empty histogram.)
    assert_eq!(m.latency.count(), 4_000);
    assert!(m.latency.quantile(0.5) > 0);
    let (p50, p99, p999) = (
        m.latency.quantile(0.50),
        m.latency.quantile(0.99),
        m.latency.quantile(0.999),
    );
    assert!(p50 <= p99 && p99 <= p999);
    assert!(m.latency.max() >= p999);
    assert!(m.latency.mean() > 0.0);
    // All threads passed the post-warmup barrier, so the merged stats
    // must carry a real (non-None) measure mark.
    assert!(m.stats.measure_start_cycles.is_some());
    // Spot-check the map still answers (no corruption under threads).
    let mut ctx = rt.thread(77);
    for k in 0..50u64 {
        let _ = map.get(&mut ctx, k);
    }
}

#[test]
fn tracing_does_not_perturb_the_virtual_schedule() {
    // The zero-overhead contract (DESIGN.md §13): installing a trace sink
    // must not change a single measured number — emission never charges
    // cycles or touches the RNG, so the deterministic schedule, the abort
    // pattern, and every counter stay bit-identical.
    let run = |trace_capacity: usize| {
        let rt = Runtime::new_virtual();
        let map = ToyMap::new(4096);
        preload(&map, &rt, &toy_spec());
        rt.reset_dynamics();
        let cfg = RunConfig {
            threads: 8,
            ops_per_thread: 600,
            seed: 21,
            warmup_ops: 50,
            trace_capacity,
            ..RunConfig::default()
        };
        run_virtual(&map, &rt, &toy_spec(), &cfg)
    };
    let plain = run(0);
    let traced = run(4096);
    assert_eq!(plain.total_ops, traced.total_ops);
    assert_eq!(plain.stats.cycles_total, traced.stats.cycles_total);
    assert_eq!(plain.aborts.total(), traced.aborts.total());
    assert_eq!(plain.elapsed_secs.to_bits(), traced.elapsed_secs.to_bits());
    assert_eq!(
        plain.latency.quantile(0.999),
        traced.latency.quantile(0.999)
    );
    // And the traced run actually recorded the run: every thread has a
    // buffer with episode + op + scheduler events in it.
    assert!(plain.trace.is_none());
    let traces = traced.trace.as_ref().unwrap();
    assert_eq!(traces.len(), 8);
    for t in traces {
        assert!(t.total > 0, "thread {} traced nothing", t.thread);
    }
    let all: usize = traces.iter().map(|t| t.events.len()).sum();
    assert!(all > 1_000, "only {all} events for 8×600 ops");
}

#[test]
fn concurrent_tracing_collects_per_thread_rings() {
    let rt = Runtime::new_concurrent();
    let map = ToyMap::new(8192);
    preload(&map, &rt, &toy_spec());
    let cfg = RunConfig {
        threads: 4,
        ops_per_thread: 500,
        seed: 13,
        warmup_ops: 50,
        trace_capacity: 1024,
        ..RunConfig::default()
    };
    let m = run_concurrent(&map, &rt, &toy_spec(), &cfg);
    let traces = m.trace.as_ref().unwrap();
    assert_eq!(traces.len(), 4);
    for t in traces {
        assert!(t.total > 0);
        assert!(t.events.len() <= 1024);
        // Per-thread streams are timestamp-ordered.
        for w in t.events.windows(2) {
            assert!(w[0].ts <= w[1].ts);
        }
    }
}
