//! Shared plumbing for the figure-regeneration binaries: system registry,
//! run orchestration, table/CSV emission.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§5). They all follow the same recipe: build the
//! systems against a fresh virtual-time runtime, preload the YCSB keys,
//! run the configured workload per data point, and print the series the
//! paper plots — as an aligned table on stdout and as CSV when
//! `--csv <path>` is given.

use std::fmt::Write as _;
use std::sync::Arc;

use euno_baselines::{HtmBTree, HtmMasstree, Masstree};
use euno_core::{EunoBTree, EunoBTreeDefault, EunoBTreeUnpartitioned, EunoConfig};
use euno_htm::{ConcurrentMap, CostModel, RetryStrategy, Runtime};
use euno_sim::{
    chrome_trace, folded_rollup, preload, report_path_for, run_virtual, strategy_for, RunConfig,
    RunEntry, RunMetrics, RunReport, DEFAULT_TRACE_CAPACITY,
};
use euno_workloads::{PolicyChoice, WorkloadSpec};

/// The four systems of §5.1, plus the ablation variants of Figure 13.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum System {
    EunoBTree,
    /// Euno with the episode-free optimistic read path enabled
    /// (`EunoConfig::read_optimized`): gets and scans run as direct-load
    /// descents validated by the leaf `seqno` bracket under an epoch pin.
    EunoReadOpt,
    HtmBTree,
    Masstree,
    HtmMasstree,
    /// Figure 13 variants.
    AblationSplitHtm,
    AblationPartLeaf,
    AblationCcmLockbits,
    AblationCcmMarkbits,
    AblationAdaptive,
    /// Three-path ablation (fig13_threepath): Euno with the executor's
    /// footprint-local middle path disabled, and the paper's two-path
    /// HTM-B+Tree baseline with it enabled.
    EunoTwoPath,
    HtmBTreeThreePath,
}

impl System {
    pub const MAIN_FOUR: [System; 4] = [
        System::EunoBTree,
        System::HtmBTree,
        System::Masstree,
        System::HtmMasstree,
    ];

    /// The §5 comparison set plus the read-optimized Euno variant —
    /// the headline figures (8, 10) and the YCSB suite run all five.
    pub const MAIN_FIVE: [System; 5] = [
        System::EunoBTree,
        System::EunoReadOpt,
        System::HtmBTree,
        System::Masstree,
        System::HtmMasstree,
    ];

    pub fn label(self) -> &'static str {
        match self {
            System::EunoBTree => "Euno-B+Tree",
            System::EunoReadOpt => "Euno-ReadOpt",
            System::HtmBTree => "HTM-B+Tree",
            System::Masstree => "Masstree",
            System::HtmMasstree => "HTM-Masstree",
            System::AblationSplitHtm => "+Split HTM",
            System::AblationPartLeaf => "+Part Leaf",
            System::AblationCcmLockbits => "+CCM lockbits",
            System::AblationCcmMarkbits => "+CCM markbits",
            System::AblationAdaptive => "+Adaptive",
            System::EunoTwoPath => "Euno-B+Tree/2path",
            System::HtmBTreeThreePath => "HTM-B+Tree/3path",
        }
    }

    /// Instantiate the system against a runtime with the default (DBX)
    /// retry strategy.
    pub fn build(self, rt: &Arc<Runtime>) -> Box<dyn ConcurrentMap> {
        self.build_with_strategy(rt, strategy_for(PolicyChoice::Dbx))
    }

    /// Instantiate the system with an explicit executor retry strategy.
    /// Masstree takes no HTM regions, so the strategy does not apply
    /// there; every other system threads it into its region executor.
    pub fn build_with_strategy(
        self,
        rt: &Arc<Runtime>,
        strategy: Arc<dyn RetryStrategy>,
    ) -> Box<dyn ConcurrentMap> {
        match self {
            System::EunoBTree | System::AblationAdaptive => {
                Box::new(EunoBTreeDefault::with_strategy(Arc::clone(rt), strategy))
            }
            System::EunoReadOpt => Box::new(EunoBTreeDefault::with_config_and_strategy(
                Arc::clone(rt),
                EunoConfig::read_optimized(),
                strategy,
            )),
            System::HtmBTree => Box::new(HtmBTree::<16>::with_strategy(Arc::clone(rt), strategy)),
            System::Masstree => Box::new(Masstree::new(Arc::clone(rt))),
            System::HtmMasstree => Box::new(HtmMasstree::with_strategy(Arc::clone(rt), strategy)),
            System::AblationSplitHtm => Box::new(EunoBTreeUnpartitioned::with_config_and_strategy(
                Arc::clone(rt),
                EunoConfig::split_htm_only(),
                strategy,
            )),
            System::AblationPartLeaf => Box::new(EunoBTree::<4, 4>::with_config_and_strategy(
                Arc::clone(rt),
                EunoConfig::part_leaf(),
                strategy,
            )),
            System::AblationCcmLockbits => Box::new(EunoBTree::<4, 4>::with_config_and_strategy(
                Arc::clone(rt),
                EunoConfig::ccm_lockbits(),
                strategy,
            )),
            System::AblationCcmMarkbits => Box::new(EunoBTree::<4, 4>::with_config_and_strategy(
                Arc::clone(rt),
                EunoConfig::ccm_markbits(),
                strategy,
            )),
            System::EunoTwoPath => Box::new(EunoBTreeDefault::with_config_and_strategy(
                Arc::clone(rt),
                EunoConfig::default().two_path(),
                strategy,
            )),
            System::HtmBTreeThreePath => {
                Box::new(HtmBTree::<16>::with_strategy(Arc::clone(rt), strategy).three_path())
            }
        }
    }
}

/// One measured data point, carrying the provenance (spec + config) the
/// run report serializes next to the metrics.
#[derive(Clone, Debug)]
pub struct Point {
    pub system: &'static str,
    /// The x-axis value (θ, thread count, …) as a printable string.
    pub x: String,
    pub spec: WorkloadSpec,
    pub cfg: RunConfig,
    pub metrics: RunMetrics,
    /// Figure-specific extras (memory accounting, swept cost constants…)
    /// that land in the report's `extra` object.
    pub extra: Vec<(String, f64)>,
}

impl Point {
    pub fn new(
        system: System,
        x: impl ToString,
        spec: &WorkloadSpec,
        cfg: &RunConfig,
        metrics: RunMetrics,
    ) -> Point {
        Point {
            system: system.label(),
            x: x.to_string(),
            spec: spec.clone(),
            cfg: cfg.clone(),
            metrics,
            extra: Vec::new(),
        }
    }

    pub fn with_extra(mut self, key: impl Into<String>, value: f64) -> Point {
        self.extra.push((key.into(), value));
        self
    }
}

/// Run one (system, workload, config) cell: fresh runtime, preload,
/// measure. The tree is built under the retry strategy the spec's
/// [`PolicyChoice`] selects.
pub fn measure(system: System, spec: &WorkloadSpec, cfg: &RunConfig) -> RunMetrics {
    let rt = Runtime::new_virtual();
    let map = system.build_with_strategy(&rt, strategy_for(spec.policy));
    preload(map.as_ref(), &rt, spec);
    rt.reset_dynamics();
    run_virtual(map.as_ref(), &rt, spec, cfg)
}

/// Global scale factor for op budgets: `EUNO_BENCH_SCALE` (default 1.0;
/// the quick CI runs set 0.1).
pub fn scale() -> f64 {
    std::env::var("EUNO_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

pub fn scaled(ops: u64) -> u64 {
    ((ops as f64 * scale()) as u64).max(200)
}

/// The standard figure run configuration every binary starts from:
/// 16 virtual threads (§5.1), a scaled per-thread op budget, and the
/// shared warmup sizing. Sweeping binaries override `threads` per point.
pub fn fig_config(seed: u64, ops_per_thread: u64) -> RunConfig {
    RunConfig {
        threads: 16,
        ops_per_thread: scaled(ops_per_thread),
        seed,
        warmup_ops: scaled(1_000).max(4_000),
        ..RunConfig::default()
    }
}

/// Parse the flags shared by every figure binary:
/// `--csv <path>` / `--ops <n>` / `--threads <n>` / `--theta <f>` /
/// `--keys <n>` / `--policy dbx|aggressive|adaptive` /
/// `--trace <path>` / `--profile`.
pub struct Cli {
    pub csv: Option<String>,
    pub ops_override: Option<u64>,
    pub threads_override: Option<usize>,
    pub theta_override: Option<f64>,
    /// Key-range override: preload cost scales with the range, so smoke
    /// runs (scripts/check.sh) pass a small `--keys` to stay cheap.
    pub keys_override: Option<u64>,
    /// Row filter: only run measurement points whose x-label contains this
    /// substring (engine_bench honours it; handy for profiling one
    /// scenario without a rebuild).
    pub only: Option<String>,
    pub policy: Option<PolicyChoice>,
    /// Export the first measured cell's event trace as Chrome trace-event
    /// JSON to this path (plus a `<path>.folded` flamegraph rollup).
    pub trace: Option<String>,
    /// Build hot-leaf contention profiles; they land in the run report's
    /// per-run `profile` sections.
    pub profile: bool,
    /// Per-thread ring capacity override for `--trace` runs (events).
    /// Smoke runs pass a small value to keep the export cheap.
    pub trace_capacity: Option<usize>,
    /// Whether the `--trace` file has been written (first traced cell).
    trace_exported: std::cell::Cell<bool>,
}

impl Cli {
    pub fn parse() -> Cli {
        let mut args = std::env::args().skip(1);
        let mut cli = Cli {
            csv: None,
            ops_override: None,
            threads_override: None,
            theta_override: None,
            keys_override: None,
            only: None,
            policy: None,
            trace: None,
            profile: false,
            trace_capacity: None,
            trace_exported: std::cell::Cell::new(false),
        };
        fn numeric<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
            match v.as_deref().map(str::parse) {
                Some(Ok(n)) => n,
                _ => {
                    eprintln!("{flag} needs a numeric value, got {v:?}");
                    std::process::exit(2);
                }
            }
        }
        while let Some(a) = args.next() {
            match a.as_str() {
                "--csv" => cli.csv = args.next(),
                "--ops" => cli.ops_override = Some(numeric("--ops", args.next())),
                "--threads" => cli.threads_override = Some(numeric("--threads", args.next())),
                "--theta" => cli.theta_override = Some(numeric("--theta", args.next())),
                "--keys" => cli.keys_override = Some(numeric("--keys", args.next())),
                "--only" => cli.only = args.next(),
                "--trace" => match args.next() {
                    Some(p) => cli.trace = Some(p),
                    None => {
                        eprintln!("--trace needs an output path");
                        std::process::exit(2);
                    }
                },
                "--profile" => cli.profile = true,
                "--trace-capacity" => {
                    cli.trace_capacity = Some(numeric("--trace-capacity", args.next()));
                }
                "--policy" => match args.next().as_deref().map(str::parse::<PolicyChoice>) {
                    Some(Ok(p)) => cli.policy = Some(p),
                    Some(Err(e)) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                    None => {
                        eprintln!("--policy needs a value (dbx|aggressive|adaptive)");
                        std::process::exit(2);
                    }
                },
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --csv <path>  --ops <per-thread>  --threads <n>\n\
                         \x20      --theta <f64>  --keys <range>  --policy dbx|aggressive|adaptive\n\
                         \x20      --only <substr> (run only rows whose label contains it)\n\
                         \x20      --trace <path> (Chrome trace JSON of the first cell, + <path>.folded)\n\
                         \x20      --trace-capacity <events> (per-thread ring size for --trace)\n\
                         \x20      --profile (hot-leaf contention table in the run report)\n\
                         env:   EUNO_BENCH_SCALE=<f64> scales default op budgets"
                    );
                    std::process::exit(0);
                }
                other => eprintln!("ignoring unknown flag {other}"),
            }
        }
        cli
    }

    pub fn apply(&self, cfg: &mut RunConfig) {
        if let Some(ops) = self.ops_override {
            cfg.ops_per_thread = ops;
        }
        if let Some(t) = self.threads_override {
            cfg.threads = t;
        }
        cfg.profile = self.profile;
        if self.trace.is_some() {
            cfg.trace_capacity = self.trace_capacity.unwrap_or(DEFAULT_TRACE_CAPACITY);
        } else if let Some(cap) = self.trace_capacity {
            cfg.trace_capacity = cap;
        }
    }

    /// Post-process one measured cell. The first traced cell is exported
    /// to the `--trace` path (Chrome trace-event JSON, Perfetto-loadable)
    /// with a `<path>.folded` flamegraph rollup next to it; then the raw
    /// trace is dropped from the metrics so a multi-cell sweep does not
    /// retain every cell's rings in memory. The (small) hot-leaf profile
    /// stays on the metrics for the run report.
    pub fn post_cell(&self, m: &mut RunMetrics) {
        let Some(traces) = m.trace.take() else {
            return;
        };
        if self.trace_exported.replace(true) {
            return;
        }
        if let Some(path) = &self.trace {
            if let Err(e) = std::fs::write(path, chrome_trace(&traces).to_pretty()) {
                eprintln!("FAIL writing {path}: {e}");
                std::process::exit(1);
            }
            let folded = format!("{path}.folded");
            if let Err(e) = std::fs::write(&folded, folded_rollup(&traces)) {
                eprintln!("FAIL writing {folded}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path} and {folded}");
        }
    }

    /// `--theta` if given, else the figure's default.
    pub fn theta(&self, default: f64) -> f64 {
        self.theta_override.unwrap_or(default)
    }

    /// The paper-default workload at `theta`, with the `--policy` choice
    /// (if any) threaded into the spec — the knob [`measure`] reads when
    /// picking the executor's retry strategy.
    pub fn spec(&self, theta: f64) -> WorkloadSpec {
        let mut spec = WorkloadSpec::paper_default(theta);
        if let Some(p) = self.policy {
            spec.policy = p;
        }
        self.shrink(&mut spec);
        spec
    }

    /// Apply the `--keys` range override to a spec built elsewhere.
    pub fn shrink(&self, spec: &mut WorkloadSpec) {
        if let Some(k) = self.keys_override {
            spec.key_range = k.max(16);
        }
    }
}

/// Emit an aligned table of `value_of` over (row = x, column = system).
pub fn print_table(
    title: &str,
    points: &[Point],
    value_name: &str,
    value_of: impl Fn(&RunMetrics) -> f64,
) {
    println!("\n== {title} ==  ({value_name})");
    let mut systems: Vec<&str> = Vec::new();
    let mut xs: Vec<&str> = Vec::new();
    for p in points {
        if !systems.contains(&p.system) {
            systems.push(p.system);
        }
        if !xs.iter().any(|x| *x == p.x) {
            xs.push(&p.x);
        }
    }
    let mut header = format!("{:>10}", "x");
    for s in &systems {
        let _ = write!(header, " {s:>14}");
    }
    println!("{header}");
    for x in &xs {
        let mut row = format!("{x:>10}");
        for s in &systems {
            let v = points
                .iter()
                .find(|p| &p.x == x && p.system == *s)
                .map(|p| value_of(&p.metrics));
            match v {
                Some(v) => {
                    let _ = write!(row, " {v:>14.3}");
                }
                None => {
                    let _ = write!(row, " {:>14}", "-");
                }
            }
        }
        println!("{row}");
    }
}

/// Write the full per-point metric set as CSV.
pub fn write_csv(path: &str, points: &[Point]) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "system,x,threads,total_ops,elapsed_secs,throughput_mops,aborts_per_op,\
         true_conflicts,false_record,false_metadata,false_structure,capacity,spurious,\
         fallback_locked,wasted_cycle_fraction,accesses_per_op,fallbacks_per_op,\
         optimistic_retries,lock_wait_cycles,lat_p50,lat_p99,lat_p999,lat_max,\
         backoff_cycles,fallback_wait_cycles,ccm_bypass_flips,middles,middle_attempts,\
         middle_wait_cycles"
    )?;
    for p in points {
        let m = &p.metrics;
        let ops = m.total_ops.max(1) as f64;
        writeln!(
            f,
            "{},{},{},{},{:.6},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.2},{:.5},{:.4},{},{},{},{},{},{},{},{},{},{},{}",
            p.system,
            p.x,
            m.threads,
            m.total_ops,
            m.elapsed_secs,
            m.mops(),
            m.aborts_per_op,
            m.aborts.true_same_record as f64 / ops,
            m.aborts.false_different_record as f64 / ops,
            m.aborts.false_metadata as f64 / ops,
            m.aborts.false_structure as f64 / ops,
            m.aborts.capacity as f64 / ops,
            m.aborts.spurious as f64 / ops,
            m.aborts.fallback_locked as f64 / ops,
            m.wasted_cycle_fraction,
            m.accesses_per_op,
            m.fallbacks_per_op,
            m.stats.optimistic_retries as f64 / ops,
            m.stats.cycles_lock_wait,
            m.latency.quantile(0.50),
            m.latency.quantile(0.99),
            m.latency.quantile(0.999),
            m.latency.max(),
            m.stats.cycles_backoff,
            m.stats.cycles_fallback_wait,
            m.stages.ccm_bypass_flips,
            m.stages.middles,
            m.stages.middle_attempts,
            m.stats.cycles_middle_wait,
        )?;
    }
    eprintln!("wrote {path}");
    Ok(())
}

/// Write the structured JSON run report (`BENCH_<figure>.json`, next to
/// the CSV): every point with its workload spec, run config, metrics and
/// latency quantiles, under the default cost model's constants. The
/// report self-validates against the DESIGN.md §11 schema before hitting
/// disk.
pub fn write_report(
    figure: &str,
    title: &str,
    csv_path: &str,
    points: &[Point],
) -> std::io::Result<()> {
    let mut report = RunReport::new(figure, title, CostModel::default());
    report.runs = points
        .iter()
        .map(|p| RunEntry {
            system: p.system.to_string(),
            x: p.x.clone(),
            spec: p.spec.clone(),
            cfg: p.cfg.clone(),
            metrics: p.metrics.clone(),
            extra: p.extra.clone(),
        })
        .collect();
    let path = report_path_for(csv_path, figure);
    report.write(&path)?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

/// What every figure binary calls for `--csv <path>`: the CSV series plus
/// the structured report alongside it.
pub fn emit(figure: &str, title: &str, csv_path: &str, points: &[Point]) -> std::io::Result<()> {
    write_csv(csv_path, points)?;
    write_report(figure, title, csv_path, points)
}
