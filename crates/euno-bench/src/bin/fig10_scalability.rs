//! Figure 10 — "Performance scalability under different contention
//! levels": throughput vs thread count (1–20) for the four systems of
//! §5.1 plus the read-optimized Euno variant, at θ ∈ {0.2 low,
//! 0.6 modest, 0.9 high, 0.99 extreme} (§5.3).
//!
//! Paper shape: at θ = 0.2 everything scales and Euno ≈ HTM-B+Tree (the
//! adaptive control removes Euno's overhead) while Masstree trails on
//! instruction count; at θ = 0.6 HTM-B+Tree collapses past ~4 threads;
//! at θ ≥ 0.9 Euno keeps scaling and beats Masstree (21.9 vs 13.1 Mops/s
//! at 20 threads, θ = 0.99); HTM-Masstree stops scaling by ~8 threads.

use euno_bench::common::{emit, fig_config, measure, print_table, Cli, Point, System};

fn main() {
    let cli = Cli::parse();
    let thread_counts = [1usize, 2, 4, 8, 12, 16, 20];
    let mut all = Vec::new();

    for (theta, label) in [
        (0.2, "low"),
        (0.6, "modest"),
        (0.9, "high"),
        (0.99, "extreme"),
    ] {
        let spec = cli.spec(theta);
        let mut points = Vec::new();
        for &threads in &thread_counts {
            let mut cfg = fig_config(0xF1610 + threads as u64, 15_000);
            cfg.threads = threads;
            if let Some(ops) = cli.ops_override {
                cfg.ops_per_thread = ops;
            }
            for system in System::MAIN_FIVE {
                let mut m = measure(system, &spec, &cfg);
                cli.post_cell(&mut m);
                eprintln!(
                    "θ={theta:<4} threads={threads:<2} {:<14} {:>8.2} Mops/s",
                    system.label(),
                    m.mops()
                );
                points.push(Point::new(system, threads, &spec, &cfg, m));
            }
        }
        print_table(
            &format!(
                "Figure 10{}: scalability, {label} contention (θ={theta})",
                match label {
                    "low" => "a",
                    "modest" => "b",
                    "high" => "c",
                    _ => "d",
                }
            ),
            &points,
            "Mops/s",
            |m| m.mops(),
        );
        all.extend(points.into_iter().map(|mut p| {
            p.x = format!("{theta}/{}", p.x);
            p
        }));
    }

    if let Some(csv) = &cli.csv {
        emit(
            "fig10",
            "Figure 10: scalability across contention levels",
            csv,
            &all,
        )
        .unwrap();
    }
}
