//! §5.7 — "Memory Consumption Analysis": the extra memory the Eunomia
//! additions (conflict-control modules + reserved-key buffers) cost on
//! top of the bare tree structure, across contention rates, get/put
//! ratios and input distributions.
//!
//! Paper shape: average overheads of ~5.6 % across skews (2.4–7.6 %),
//! ~4.2 % across mixes (2.9–5.8 %), 2.2–6.9 % across distributions —
//! because the reserved buffers are transient and the CCM is two words
//! per leaf.

use euno_bench::common::{emit, fig_config, Cli, Point, System};
use euno_htm::Runtime;
use euno_sim::{preload, run_virtual, RunConfig};
use euno_workloads::{KeyDistribution, OpMix, WorkloadSpec};

fn run_one(cli: &Cli, label: &str, spec: &WorkloadSpec, cfg: &RunConfig) -> Point {
    let rt = Runtime::new_virtual();
    let map = System::EunoBTree.build(&rt);
    preload(map.as_ref(), &rt, spec);
    rt.reset_dynamics();
    let mut metrics = run_virtual(map.as_ref(), &rt, spec, cfg);
    cli.post_cell(&mut metrics);
    let m = map.memory();
    println!(
        "{label:<28} structural {:>9} B  ccm {:>8} B  reserved live/peak {:>8}/{:>8} B  overhead {:>5.2}%",
        m.structural_bytes,
        m.ccm_bytes,
        m.reserved_live_bytes,
        m.reserved_peak_bytes,
        100.0 * m.overhead_fraction()
    );
    Point::new(System::EunoBTree, label, spec, cfg, metrics)
        .with_extra("structural_bytes", m.structural_bytes as f64)
        .with_extra("ccm_bytes", m.ccm_bytes as f64)
        .with_extra("reserved_live_bytes", m.reserved_live_bytes as f64)
        .with_extra("reserved_peak_bytes", m.reserved_peak_bytes as f64)
        .with_extra("retired_pending_bytes", m.retired_pending_bytes as f64)
        .with_extra("reclaimed_bytes", m.reclaimed_bytes as f64)
        .with_extra("overhead_fraction", m.overhead_fraction())
}

/// §5.7d — reclamation under churn: one tree lives through a fill phase,
/// a delete-heavy phase with explicit maintenance (merges retire leaves
/// to the epoch collector), and a final drain. The three snapshots must
/// show `retired_pending_bytes` rise and then fall back to zero while
/// `reclaimed_bytes` only grows — retired memory is genuinely returned,
/// not accumulated.
fn churn_phases(cli: &Cli, cfg: &RunConfig, points: &mut Vec<Point>) {
    use euno_htm::ThreadCtx;

    let rt = Runtime::new_virtual();
    let map = System::EunoBTree.build(&rt);
    let mut phase = |label: &str, spec: &WorkloadSpec, after: &mut dyn FnMut(&mut ThreadCtx)| {
        let mut metrics = run_virtual(map.as_ref(), &rt, spec, cfg);
        cli.post_cell(&mut metrics);
        let mut ctx = rt.thread(0);
        after(&mut ctx);
        let m = map.memory();
        println!(
            "{label:<28} structural {:>9} B  retired-pending {:>8} B  reclaimed {:>8} B",
            m.structural_bytes, m.retired_pending_bytes, m.reclaimed_bytes
        );
        points.push(
            Point::new(System::EunoBTree, label, spec, cfg, metrics)
                .with_extra("structural_bytes", m.structural_bytes as f64)
                .with_extra("retired_pending_bytes", m.retired_pending_bytes as f64)
                .with_extra("reclaimed_bytes", m.reclaimed_bytes as f64),
        );
    };

    let mut fill = cli.spec(0.0);
    fill.mix = OpMix {
        get: 0.0,
        put: 1.0,
        delete: 0.0,
        scan: 0.0,
    };
    fill.dist = KeyDistribution::Uniform;
    // Dense enough that the delete phase hits real records: uniform
    // deletes over a sparse range would mostly miss, and absent-key
    // deletes retire nothing.
    fill.key_range = fill
        .key_range
        .min(cfg.threads as u64 * cfg.ops_per_thread / 4);
    phase("churn: fill", &fill, &mut |_| {});

    // Delete-heavy traffic leaves the leaf chain sparse; the maintenance
    // sweep afterwards merges and hands the emptied leaves to the
    // collector. run_virtual drains at quiescence, so everything still
    // pending here was retired by this maintain call — the "rise".
    let mut churn = fill.clone();
    churn.mix = OpMix {
        get: 0.1,
        put: 0.1,
        delete: 0.8,
        scan: 0.0,
    };
    phase("churn: delete+maintain", &churn, &mut |ctx| {
        map.maintain(ctx);
    });

    // Quiescent drain: two collects (advance + mature) free the lot.
    let mut idle = fill.clone();
    idle.mix = OpMix {
        get: 1.0,
        put: 0.0,
        delete: 0.0,
        scan: 0.0,
    };
    phase("churn: drain", &idle, &mut |_| {
        rt.epoch().collect();
        rt.epoch().collect();
    });
}

fn main() {
    let cli = Cli::parse();
    let mut cfg = fig_config(0x5E07, 20_000);
    cfg.warmup_ops = 0; // memory audit wants the whole run's allocations
    cli.apply(&mut cfg);
    let mut points = Vec::new();

    println!("== §5.7a: memory overhead vs contention rate ==");
    for theta in [0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.99] {
        let spec = cli.spec(theta);
        points.push(run_one(&cli, &format!("zipfian θ={theta}"), &spec, &cfg));
    }

    println!("\n== §5.7b: memory overhead vs get/put ratio (θ=0.9) ==");
    for (g, p) in [(0.2, 0.8), (0.5, 0.5), (0.8, 0.2)] {
        let spec = WorkloadSpec {
            mix: OpMix::get_put(g),
            ..cli.spec(0.9)
        };
        points.push(run_one(&cli, &format!("get/put {g}/{p}"), &spec, &cfg));
    }

    println!("\n== §5.7c: memory overhead vs input distribution ==");
    for (name, dist) in [
        ("self-similar", KeyDistribution::self_similar_paper()),
        ("poisson", KeyDistribution::poisson_paper()),
        ("uniform", KeyDistribution::Uniform),
    ] {
        let spec = WorkloadSpec {
            dist,
            ..cli.spec(0.0)
        };
        points.push(run_one(&cli, name, &spec, &cfg));
    }

    println!("\n== §5.7d: reclamation under churn (fill → delete-heavy → drain) ==");
    churn_phases(&cli, &cfg, &mut points);

    if let Some(csv) = &cli.csv {
        emit("mem", "§5.7: Euno-B+Tree memory overhead", csv, &points).unwrap();
    }
}
