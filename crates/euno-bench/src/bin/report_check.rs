//! Validate `BENCH_*.json` run reports against the DESIGN.md §11 schema.
//!
//! ```sh
//! cargo run --release -p euno-bench --bin report_check -- results/BENCH_*.json
//! ```
//!
//! Exits non-zero on the first malformed report; `scripts/bench.sh` and
//! the `scripts/check.sh` smoke stage run this over everything they emit,
//! so a schema drift fails CI instead of silently producing unreadable
//! telemetry.

use euno_sim::{validate_report, Json};

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: report_check <BENCH_*.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {path}: {e}");
                failed = true;
                continue;
            }
        };
        match validate_report(&text) {
            Ok(()) => {
                // Headline line so bench.sh logs double as a summary.
                let doc = Json::parse(&text).expect("validated implies parseable");
                let runs = doc
                    .get("runs")
                    .and_then(Json::as_arr)
                    .map_or(0, <[Json]>::len);
                let figure = doc.get("figure").and_then(Json::as_str).unwrap_or("?");
                let git = doc.get("git").and_then(Json::as_str).unwrap_or("?");
                println!("ok   {path}: figure={figure} runs={runs} git={git}");
            }
            Err(e) => {
                eprintln!("FAIL {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
