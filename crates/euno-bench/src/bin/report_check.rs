//! Validate `BENCH_*.json` run reports against the DESIGN.md §11 schema,
//! and (with `--trace`) Chrome trace-event exports against the DESIGN.md
//! §13 contract.
//!
//! ```sh
//! cargo run --release -p euno-bench --bin report_check -- results/BENCH_*.json
//! cargo run --release -p euno-bench --bin report_check -- --trace results/trace.json
//! ```
//!
//! Exits non-zero on the first malformed file; `scripts/bench.sh` and
//! the `scripts/check.sh` smoke stage run this over everything they emit,
//! so a schema drift fails CI instead of silently producing unreadable
//! telemetry.

use euno_sim::{validate_chrome_trace, validate_report, Json};

fn main() {
    let mut trace_mode = false;
    let mut paths: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--trace" => trace_mode = true,
            _ => paths.push(a),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: report_check [--trace] <file.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {path}: {e}");
                failed = true;
                continue;
            }
        };
        if trace_mode {
            match validate_chrome_trace(&text) {
                Ok(()) => {
                    let doc = Json::parse(&text).expect("validated implies parseable");
                    let events = doc
                        .get("traceEvents")
                        .and_then(Json::as_arr)
                        .map_or(0, <[Json]>::len);
                    println!("ok   {path}: chrome trace, {events} events");
                }
                Err(e) => {
                    eprintln!("FAIL {path}: {e}");
                    failed = true;
                }
            }
            continue;
        }
        match validate_report(&text) {
            Ok(()) => {
                // Headline line so bench.sh logs double as a summary.
                let doc = Json::parse(&text).expect("validated implies parseable");
                let runs = doc
                    .get("runs")
                    .and_then(Json::as_arr)
                    .map_or(0, <[Json]>::len);
                let profiled = doc.get("runs").and_then(Json::as_arr).map_or(0, |rs| {
                    rs.iter().filter(|r| r.get("profile").is_some()).count()
                });
                let figure = doc.get("figure").and_then(Json::as_str).unwrap_or("?");
                let git = doc.get("git").and_then(Json::as_str).unwrap_or("?");
                println!("ok   {path}: figure={figure} runs={runs} profiled={profiled} git={git}");
            }
            Err(e) => {
                eprintln!("FAIL {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
