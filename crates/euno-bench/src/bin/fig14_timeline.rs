//! Figure 14 — adaptation timeline under a rotating Zipf hotspot
//! (ROADMAP item 4; DESIGN.md §14).
//!
//! Scenario: the measured run is split into `ROTATIONS` equal spans of
//! virtual time. Within each span every sampled key is shifted by a fixed
//! stride, so the Zipfian head — the hot leaves — jumps to a fresh region
//! of the key space at each boundary ("flash crowd"). The boundaries are
//! *programmed*: the first thread to cross one stamps a shift mark into
//! the metrics flip log at the exact boundary tick, and the CCM's
//! re-protect flips that follow give the run's **adaptation lag** — how
//! long the newly hot leaves stay on the bypass fast path (aborting) before
//! the per-leaf conflict window flips them back to protected mode.
//!
//! Because rotation is a pure function of the virtual clock, the schedule
//! stays deterministic: same seed, same timeline, same lags. The rotation
//! period is calibrated from an unrotated run of the same workload so the
//! shifts land inside the measured phase regardless of `EUNO_BENCH_SCALE`.
//!
//! Output: per-window throughput / abort-rate / fallback-rate / flip
//! curves on stdout, the adaptation-lag table per shift, and with `--csv`
//! the standard CSV + `BENCH_fig14.json` run report (whose `timeseries`
//! sections carry the full curves) plus a `<csv-stem>.jsonl` metrics
//! JSON-lines export of the Euno timeline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use euno_bench::common::{emit, fig_config, Cli, Point, System};
use euno_htm::{CostModel, Runtime};
use euno_metrics::{adaptation_lags, Counter, TimeSeries};
use euno_sim::{
    apply_op, apply_warmup_op, metrics_jsonl, preload, strategy_for, RunConfig, RunMetrics,
    VirtualScheduler,
};
use euno_workloads::OpStream;
use euno_workloads::{Op, WorkloadSpec};

/// Spans of the timeline; `ROTATIONS - 1` programmed hotspot shifts.
const ROTATIONS: u64 = 4;

/// Shift every key by `offset` (mod the key range): the Zipfian head moves
/// to a fresh leaf region while the marginal key distribution — and thus
/// the tree shape the preload built — is unchanged.
fn rotate_op(op: Op, offset: u64, n: u64) -> Op {
    let rot = |k: u64| (k + offset) % n;
    match op {
        Op::Get { key } => Op::Get { key: rot(key) },
        Op::Put { key, value } => Op::Put {
            key: rot(key),
            value,
        },
        Op::Delete { key } => Op::Delete { key: rot(key) },
        Op::Scan { from, len } => Op::Scan {
            from: rot(from),
            len,
        },
    }
}

/// One virtual-mode run with the hotspot rotating every `period` cycles.
/// `period = u64::MAX` disables rotation (the calibration run).
fn run_rotating(system: System, spec: &WorkloadSpec, cfg: &RunConfig, period: u64) -> RunMetrics {
    let rt = Runtime::new_virtual();
    let map = system.build_with_strategy(&rt, strategy_for(spec.policy));
    preload(map.as_ref(), &rt, spec);
    rt.reset_dynamics();

    let mut sched = VirtualScheduler::new(Arc::clone(&rt));
    if cfg.sample_every > 0 {
        let cap = match cfg.sample_capacity {
            0 => TimeSeries::DEFAULT_CAPACITY,
            c => c,
        };
        sched.set_sampling(cfg.sample_every, cap);
    }
    let stride = spec.key_range / ROTATIONS;
    // Boundary crossings already stamped into the flip log. Shared so each
    // programmed shift is marked exactly once, at its exact boundary tick,
    // by whichever thread crosses it first (deterministic under the
    // lowest-clock-first scheduler).
    let marked = Arc::new(AtomicU64::new(0));
    for t in 0..cfg.threads {
        let mut stream = OpStream::new(spec, t as u64, cfg.seed);
        let mut scan_buf: Vec<(u64, u64)> = Vec::new();
        let mut warmup_left = cfg.warmup_ops;
        let mut left = cfg.ops_per_thread;
        let map_ref = map.as_ref();
        let rt = Arc::clone(&rt);
        let marked = Arc::clone(&marked);
        sched.add_thread(
            cfg.seed.wrapping_add(t as u64),
            Box::new(move |ctx| {
                let r = if period == u64::MAX {
                    0
                } else {
                    (ctx.clock / period).min(ROTATIONS - 1)
                };
                let mut seen = marked.load(Ordering::Relaxed);
                while seen < r {
                    match marked.compare_exchange(
                        seen,
                        seen + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            rt.metrics().mark_shift((seen + 1) * period);
                            seen += 1;
                        }
                        Err(cur) => seen = cur,
                    }
                }
                if warmup_left > 0 {
                    warmup_left -= 1;
                    let op = rotate_op(stream.next_op(), r * stride, spec.key_range);
                    apply_warmup_op(map_ref, ctx, op, &mut scan_buf);
                    if warmup_left == 0 {
                        ctx.stats.measure_start_cycles = Some(ctx.clock);
                    }
                    return true;
                }
                if left == 0 {
                    return false;
                }
                left -= 1;
                let op = rotate_op(stream.next_op(), r * stride, spec.key_range);
                apply_op(map_ref, ctx, op, &mut scan_buf);
                true
            }),
        );
    }
    let m = sched.run();
    rt.epoch().collect();
    rt.epoch().collect();
    m
}

/// Whole-run makespan in cycles (warmup included), reconstructed from the
/// measured span and the earliest warmup-exit mark.
fn makespan_cycles(m: &RunMetrics, cost: &CostModel) -> u64 {
    let span = (m.elapsed_secs / cost.cycles_to_secs(1)).round() as u64;
    m.stats.measure_start_cycles.unwrap_or(0) + span
}

fn main() {
    let cli = Cli::parse();
    let mut spec = cli.spec(cli.theta(0.95));
    // Small enough that the Zipfian head concentrates on a handful of
    // leaves (so rotation visibly moves the contention), large enough that
    // the four rotated regions do not overlap leaves.
    spec.key_range = 32_768;
    cli.shrink(&mut spec);

    let mut cfg = fig_config(0x00F1_6144, 12_000);
    cli.apply(&mut cfg);
    // A figure about transient response wants the transients: keep warmup
    // just long enough to shape the hot leaves, so the rotation spans are
    // dominated by measured windows instead of warmup dead time.
    cfg.warmup_ops = (cfg.ops_per_thread / 8).max(200);

    // Calibrate: an unrotated run of the same workload fixes the virtual
    // makespan, so the rotation period adapts to `EUNO_BENCH_SCALE` and
    // flag overrides while the measured run stays fully deterministic.
    let cost = CostModel::default();
    let calib = run_rotating(System::EunoBTree, &spec, &cfg, u64::MAX);
    let period = (makespan_cycles(&calib, &cost) / ROTATIONS).max(1);
    // ~8 samples per rotation span: enough resolution to see the abort
    // spike and the flip answer it, few enough to eyeball on stdout.
    cfg.sample_every = (period / 8).max(1);
    // Default ring capacity (256): the baseline tree is several times
    // slower than the calibrating Euno run, so its timeline has several
    // times the windows; the ring must hold them all.
    cfg.sample_capacity = 0;

    println!(
        "== Figure 14: rotating-hotspot timeline, {} threads, {} keys, \
         period {} cycles, {} shifts ==",
        cfg.threads,
        spec.key_range,
        period,
        ROTATIONS - 1
    );

    let mut all = Vec::new();
    let mut euno_jsonl: Option<String> = None;
    for system in [System::EunoBTree, System::HtmBTree] {
        let mut m = run_rotating(system, &spec, &cfg, period);
        cli.post_cell(&mut m);

        println!("\n-- {} --", system.label());
        println!(
            "{:>12} {:>9} {:>10} {:>10} {:>7}",
            "tick", "Mops/s", "aborts/op", "fb/op", "flips"
        );
        if let Some(ts) = &m.timeseries {
            for w in ts.windows() {
                let ops = w.counter(Counter::Ops).max(1) as f64;
                let secs = cost.cycles_to_secs(w.span());
                let aborts: u64 = euno_metrics::ABORTS_HTM
                    .iter()
                    .chain(euno_metrics::ABORTS_MIDDLE.iter())
                    .map(|c| w.counter(*c))
                    .sum();
                println!(
                    "{:>12} {:>9.2} {:>10.3} {:>10.4} {:>7}",
                    w.t1,
                    w.counter(Counter::Ops) as f64 / secs / 1e6,
                    aborts as f64 / ops,
                    w.counter(Counter::Fallbacks) as f64 / ops,
                    w.flip_events,
                );
            }
        }
        let lags = adaptation_lags(&m.flips);
        let mut point = Point::new(system, "timeline", &spec, &cfg, m.clone());
        if !lags.is_empty() {
            println!("   adaptation lag per programmed shift:");
            for l in &lags {
                match l.lag {
                    Some(lag) => println!(
                        "     shift @{:>12} -> re-protect @{:>12}  lag {:>9} cycles",
                        l.shift_tick,
                        l.flip_tick.unwrap(),
                        lag
                    ),
                    None => println!(
                        "     shift @{:>12} -> no re-protect flip before next shift",
                        l.shift_tick
                    ),
                }
            }
            let answered: Vec<u64> = lags.iter().filter_map(|l| l.lag).collect();
            if !answered.is_empty() {
                let mean = answered.iter().sum::<u64>() as f64 / answered.len() as f64;
                let max = *answered.iter().max().unwrap();
                println!(
                    "     answered {}/{} shifts, mean lag {:.0} cycles, max {}",
                    answered.len(),
                    lags.len(),
                    mean,
                    max
                );
                point = point
                    .with_extra("adaptation_shifts", lags.len() as f64)
                    .with_extra("adaptation_answered", answered.len() as f64)
                    .with_extra("adaptation_mean_lag_cycles", mean)
                    .with_extra("adaptation_max_lag_cycles", max as f64);
            }
        }
        if system == System::EunoBTree {
            if let Some(ts) = &point.metrics.timeseries {
                euno_jsonl = Some(metrics_jsonl(
                    ts,
                    &point.metrics.flips,
                    point.metrics.tick_unit,
                ));
            }
        }
        all.push(point);
    }

    if let Some(csv) = &cli.csv {
        emit(
            "fig14",
            "Figure 14: adaptation timeline under a rotating Zipf hotspot",
            csv,
            &all,
        )
        .unwrap();
        if let Some(jsonl) = euno_jsonl {
            let path = format!("{}.jsonl", csv.trim_end_matches(".csv"));
            euno_trace_write(&path, &jsonl);
        }
    }
}

fn euno_trace_write(path: &str, text: &str) {
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("FAIL writing {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {path}");
}
