//! Figure 2 — "HTM aborts incurred by different reasons": the abort-rate
//! decomposition of the conventional HTM-B+Tree as contention grows
//! (§2.3), plus the two headline analysis numbers of that section: the
//! fraction of conflicts at the leaf level (paper: >90 %) and the fraction
//! of CPU cycles wasted in aborted attempts (paper: >94 % at θ = 0.9).
//!
//! Paper shape: abort rate grows ~47× from θ = 0.5 to θ = 0.9; 87-90 % of
//! conflicts come from requests to *different* keys (consecutive-record
//! false sharing), 6-10 % from shared metadata, 9-12 % from true
//! same-record conflicts.

use euno_bench::common::{emit, fig_config, measure, Cli, Point, System};

fn main() {
    let cli = Cli::parse();
    let mut cfg = fig_config(0xF1602, 20_000);
    cli.apply(&mut cfg);

    println!(
        "{:>5} {:>10} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "theta", "aborts/op", "true%", "falseRec%", "meta%", "struct%", "leaf%", "wasted%"
    );
    let mut points = Vec::new();
    for theta in [0.5, 0.6, 0.7, 0.8, 0.9, 0.99] {
        let spec = cli.spec(theta);
        let mut m = measure(System::HtmBTree, &spec, &cfg);
        cli.post_cell(&mut m);
        let conflicts = m.aborts.conflicts().max(1) as f64;
        let pct = |n: u64| 100.0 * n as f64 / conflicts;
        println!(
            "{theta:>5} {:>10.3} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>7.1}% {:>7.1}%",
            m.aborts_per_op,
            pct(m.aborts.true_same_record),
            pct(m.aborts.false_different_record),
            pct(m.aborts.false_metadata),
            pct(m.aborts.false_structure),
            100.0 * m.aborts.leaf_level_conflicts() as f64 / conflicts,
            100.0 * m.wasted_cycle_fraction,
        );
        points.push(Point::new(System::HtmBTree, theta, &spec, &cfg, m));
    }

    // Headline ratio of §2.3: abort rate at 0.9 vs 0.5 (paper: ~47×).
    let rate = |x: &str| {
        points
            .iter()
            .find(|p| p.x == x)
            .map(|p| p.metrics.aborts_per_op)
            .unwrap_or(0.0)
    };
    if rate("0.5") > 0.0 {
        println!(
            "\nabort-rate growth θ=0.9 vs θ=0.5: {:.1}× (paper: ~47×)",
            rate("0.9") / rate("0.5")
        );
    }
    if let Some(csv) = &cli.csv {
        emit(
            "fig02",
            "Figure 2: HTM-B+Tree abort breakdown vs contention",
            csv,
            &points,
        )
        .unwrap();
    }
}
