//! Figure 9 — "Comparison of HTM aborts incurred by different reasons
//! (16 threads)": aborts per operation, by cause, for the conventional
//! HTM-B+Tree vs Euno-B+Tree across the skew sweep (§5.2).
//!
//! Paper shape: Eunomia eliminates most aborts — 60.3 vs 1.9 aborts/op
//! under extreme contention (θ = 0.99).

use euno_bench::common::{emit, fig_config, measure, print_table, Cli, Point, System};

fn main() {
    let cli = Cli::parse();
    let mut cfg = fig_config(0xF1609, 20_000);
    cli.apply(&mut cfg);

    let mut points = Vec::new();
    for theta in [0.5, 0.6, 0.7, 0.8, 0.9, 0.99] {
        let spec = cli.spec(theta);
        for system in [System::HtmBTree, System::EunoBTree] {
            let mut m = measure(system, &spec, &cfg);
            cli.post_cell(&mut m);
            let ops = m.total_ops.max(1) as f64;
            eprintln!(
                "θ={theta:<4} {:<12} {:>7.2} aborts/op (true {:>5.2}, falseRec {:>5.2}, meta {:>5.2})",
                system.label(),
                m.aborts_per_op,
                m.aborts.true_same_record as f64 / ops,
                m.aborts.false_different_record as f64 / ops,
                m.aborts.false_metadata as f64 / ops,
            );
            points.push(Point::new(system, theta, &spec, &cfg, m));
        }
    }

    print_table(
        "Figure 9: aborts per operation",
        &points,
        "aborts/op",
        |m| m.aborts_per_op,
    );
    let get = |x: &str, s: &str| {
        points
            .iter()
            .find(|p| p.x == x && p.system == s)
            .map(|p| p.metrics.aborts_per_op)
            .unwrap_or(f64::NAN)
    };
    println!(
        "\nθ=0.99: HTM-B+Tree {:.1} vs Euno {:.1} aborts/op (paper: 60.3 vs 1.9)",
        get("0.99", "HTM-B+Tree"),
        get("0.99", "Euno-B+Tree")
    );
    if let Some(csv) = &cli.csv {
        emit(
            "fig09",
            "Figure 9: aborts per operation, HTM-B+Tree vs Euno-B+Tree",
            csv,
            &points,
        )
        .unwrap();
    }
}
