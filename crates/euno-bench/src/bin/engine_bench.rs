//! engine_bench — wall-clock throughput of the episode machinery itself.
//!
//! Every figure binary measures *virtual* time, which is deterministic by
//! construction and therefore blind to the real cost of running the
//! engine: allocation per attempt, registry locking per access, window
//! scans per commit. This binary times the engine with a wall clock so
//! hot-path work is measurable and regressions are arguable with numbers.
//!
//! Scenarios (rows), each at 1 and 4 threads (suffix):
//!
//! * `private`  — every thread read-modify-writes its own padded cell:
//!   the always-commit hit path (begin/access/commit, no conflicts).
//! * `shared-read` — read-only transactions over a shared block of lines:
//!   read-set growth plus commit-time window checks, still no aborts.
//! * `hot`      — all threads RMW one cell: the contended path (aborts,
//!   backoff, fallback serialization, storm extrapolation).
//! * `tree`     — Euno-B+Tree under the paper's Zipfian θ=0.9 workload:
//!   the full engine driven by a real tree (virtual mode only).
//!
//! The backend axis: `engine-virtual` rows drive logical threads through
//! the deterministic scheduler and time the simulation's wall clock;
//! `engine-stm` rows use real OS threads through the TL2-style software
//! transactions; `engine-rtm` rows (built with `--features hw-rtm`, shown
//! only when the CPU exposes Intel RTM) elide on genuine hardware
//! transactions. Throughput in the emitted report is episodes (or tree
//! ops) per *wall* second.
//!
//! Usage: `engine_bench [--csv results/engine.csv] [--ops <per-thread>]
//! [--only <substr>]` — `--only` restricts to rows whose label contains
//! the substring, e.g. `--only tree/t1` for a profiling run.
//! (`EUNO_BENCH_SCALE` scales default budgets as everywhere else).

use std::sync::Arc;
use std::time::Instant;

use euno_bench::common::{emit, print_table, scaled, Cli, Point, System};
use euno_htm::{ConcurrentBackend, Mode, RetryPolicy, Runtime, ThreadCtx, TxCell};
use euno_sim::{
    preload, run_virtual, strategy_for, LatencyHistogram, RunConfig, RunMetrics, VirtualScheduler,
};
use euno_workloads::{Preload, WorkloadSpec};

/// One counter per cache line so the `private` scenario is conflict-free.
#[repr(align(64))]
struct PaddedCell(TxCell<u64>);

struct Arena {
    fb: TxCell<u64>,
    cells: Vec<PaddedCell>,
}

const SHARED_READ_LINES: usize = 4;

impl Arena {
    fn new(n: usize) -> Self {
        Arena {
            fb: TxCell::new(0),
            cells: (0..n).map(|_| PaddedCell(TxCell::new(0))).collect(),
        }
    }

    /// One episode: transactional RMW of cell `i`.
    fn bump(&self, ctx: &mut ThreadCtx, i: usize) {
        ctx.htm_execute(&self.fb, &RetryPolicy::default(), |tx| {
            let v = tx.read(&self.cells[i].0)?;
            tx.write(&self.cells[i].0, v + 1)
        });
        ctx.stats.ops += 1;
    }

    /// One episode: read-only transaction over the first few cells.
    fn scan_shared(&self, ctx: &mut ThreadCtx) {
        ctx.htm_execute(&self.fb, &RetryPolicy::default(), |tx| {
            let mut acc = 0u64;
            for c in &self.cells[..SHARED_READ_LINES] {
                acc = acc.wrapping_add(tx.read(&c.0)?);
            }
            Ok(acc)
        });
        ctx.stats.ops += 1;
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Scenario {
    Private,
    SharedRead,
    Hot,
}

impl Scenario {
    fn label(self) -> &'static str {
        match self {
            Scenario::Private => "private",
            Scenario::SharedRead => "shared-read",
            Scenario::Hot => "hot",
        }
    }

    fn run_episode(self, arena: &Arena, ctx: &mut ThreadCtx, thread: usize) {
        match self {
            Scenario::Private => arena.bump(ctx, SHARED_READ_LINES + thread),
            Scenario::SharedRead => arena.scan_shared(ctx),
            Scenario::Hot => arena.bump(ctx, SHARED_READ_LINES),
        }
    }
}

/// Provenance stub for the raw-episode scenarios: there is no YCSB
/// workload behind them, but the report schema wants a spec, so describe
/// the arena honestly (uniform over `cells` keys, nothing preloaded).
fn raw_spec(cells: usize) -> WorkloadSpec {
    let mut spec = WorkloadSpec::paper_default(0.0);
    spec.key_range = cells as u64;
    spec.preload = Preload::None;
    spec
}

fn raw_config(threads: usize, ops: u64, seed: u64) -> RunConfig {
    RunConfig {
        threads,
        ops_per_thread: ops,
        seed,
        warmup_ops: 0,
        trace_capacity: 0,
        profile: false,
        sample_every: 0,
        sample_capacity: 0,
    }
}

/// Drive `threads` logical threads of `ops` episodes each through the
/// deterministic scheduler; wall-clock the whole simulation.
/// `metrics_on = false` disables the metric registry before any thread
/// registers a shard — the baseline for the metrics-overhead gate in
/// EXPERIMENTS.md (every hot-path hook degrades to one never-taken
/// branch).
fn run_raw_virtual(
    scenario: Scenario,
    threads: usize,
    ops: u64,
    seed: u64,
    metrics_on: bool,
) -> RunMetrics {
    let rt = Runtime::new_virtual();
    rt.metrics().set_enabled(metrics_on);
    let arena = Arc::new(Arena::new(SHARED_READ_LINES + threads));
    let mut sched = VirtualScheduler::new(Arc::clone(&rt));
    for t in 0..threads {
        let a = Arc::clone(&arena);
        let mut left = ops;
        sched.add_thread(
            seed.wrapping_add(t as u64),
            Box::new(move |ctx| {
                if left == 0 {
                    return false;
                }
                left -= 1;
                scenario.run_episode(&a, ctx, t);
                true
            }),
        );
    }
    let t0 = Instant::now();
    let m = sched.run();
    let wall = t0.elapsed().as_secs_f64();
    RunMetrics::from_wall(m.per_thread.clone(), m.stages, wall, m.latency.clone())
}

/// Same scenarios on real OS threads: TL2-style software transactions
/// ([`ConcurrentBackend::Stm`]) or hardware lock elision
/// ([`ConcurrentBackend::HwRtm`], meaningful only when
/// `euno_htm::hw_rtm_available()`).
fn run_raw_concurrent(
    scenario: Scenario,
    threads: usize,
    ops: u64,
    seed: u64,
    backend: ConcurrentBackend,
    metrics_on: bool,
) -> RunMetrics {
    let rt = Runtime::new_with_backend(Mode::Concurrent, euno_htm::CostModel::default(), backend);
    rt.metrics().set_enabled(metrics_on);
    let arena = Arc::new(Arena::new(SHARED_READ_LINES + threads));
    let barrier = std::sync::Barrier::new(threads);
    // Each worker stamps its own start/end around the measured loop; the
    // run's wall time is max(end) - min(start).  Stamping from the main
    // thread after its own barrier.wait() is racy: the scheduler may run
    // every worker to completion first (observed on single-CPU hosts at
    // smoke sizes), inflating throughput by orders of magnitude.
    type WorkerOut = (
        euno_htm::ThreadStats,
        euno_metrics::ExecStages,
        LatencyHistogram,
        Instant,
        Instant,
    );
    let results: Vec<WorkerOut> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let rt = Arc::clone(&rt);
            let arena = Arc::clone(&arena);
            let barrier = &barrier;
            handles.push(s.spawn(move || {
                let mut ctx = rt.thread(seed.wrapping_add(t as u64));
                let mut latency = LatencyHistogram::new();
                barrier.wait();
                let start = Instant::now();
                for _ in 0..ops {
                    let before = ctx.clock;
                    scenario.run_episode(&arena, &mut ctx, t);
                    latency.record(ctx.clock - before);
                }
                let end = Instant::now();
                ctx.finish();
                let stages = ctx.exec_stages();
                (ctx.stats, stages, latency, start, end)
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let start = results.iter().map(|r| r.3).min().expect("threads >= 1");
    let end = results.iter().map(|r| r.4).max().expect("threads >= 1");
    let wall = (end - start).as_secs_f64();
    let mut latency = LatencyHistogram::new();
    let mut per_thread = Vec::with_capacity(results.len());
    let mut stages = euno_metrics::ExecStages::default();
    for (stats, st, hist, _, _) in results {
        latency.merge(&hist);
        per_thread.push(stats);
        stages.merge(&st);
    }
    RunMetrics::from_wall(per_thread, stages, wall, latency)
}

/// The full engine under a real tree and the paper's skewed workload,
/// wall-clocked over the measured phase only (build + preload excluded).
fn run_tree_virtual(threads: usize, ops: u64, seed: u64) -> (WorkloadSpec, RunConfig, RunMetrics) {
    let mut spec = WorkloadSpec::paper_default(0.9);
    spec.key_range = 50_000;
    let cfg = RunConfig {
        threads,
        ops_per_thread: ops,
        seed,
        warmup_ops: 500,
        trace_capacity: 0,
        profile: false,
        sample_every: 0,
        sample_capacity: 0,
    };
    let rt = Runtime::new_virtual();
    let map = System::EunoBTree.build_with_strategy(&rt, strategy_for(spec.policy));
    preload(map.as_ref(), &rt, &spec);
    rt.reset_dynamics();
    let t0 = Instant::now();
    let m = run_virtual(map.as_ref(), &rt, &spec, &cfg);
    let wall = t0.elapsed().as_secs_f64();
    let metrics = RunMetrics::from_wall(m.per_thread.clone(), m.stages, wall, m.latency.clone());
    (spec, cfg, metrics)
}

fn main() {
    let cli = Cli::parse();
    let seed = 0xe9_61_7e;
    let raw_ops = cli.ops_override.unwrap_or_else(|| scaled(200_000));
    let tree_ops = cli.ops_override.unwrap_or_else(|| scaled(20_000));
    let thread_counts = [1usize, 4];
    let want = |x: &str| cli.only.as_deref().is_none_or(|o| x.contains(o));

    let mut points: Vec<Point> = Vec::new();
    for &threads in &thread_counts {
        for scenario in [Scenario::Private, Scenario::SharedRead, Scenario::Hot] {
            let x = format!("{}/t{}", scenario.label(), threads);
            if !want(&x) {
                continue;
            }
            let m = run_raw_virtual(scenario, threads, raw_ops, seed, true);
            points.push(Point {
                system: "engine-virtual",
                x: x.clone(),
                spec: raw_spec(SHARED_READ_LINES + threads),
                cfg: raw_config(threads, raw_ops, seed),
                metrics: m,
                extra: Vec::new(),
            });
            // Metrics-overhead gate: same schedule with the registry
            // disabled (each hot-path hook is one never-taken branch).
            // EXPERIMENTS.md compares this row against engine-virtual.
            let m = run_raw_virtual(scenario, threads, raw_ops, seed, false);
            points.push(Point {
                system: "engine-virtual-nometrics",
                x: x.clone(),
                spec: raw_spec(SHARED_READ_LINES + threads),
                cfg: raw_config(threads, raw_ops, seed),
                metrics: m,
                extra: Vec::new(),
            });
            // The contended concurrent scenario burns real spin time per
            // episode; a smaller budget keeps the default run snappy.
            let c_ops = if scenario == Scenario::Hot {
                raw_ops / 4
            } else {
                raw_ops
            }
            .max(1_000);
            let m =
                run_raw_concurrent(scenario, threads, c_ops, seed, ConcurrentBackend::Stm, true);
            points.push(Point {
                system: "engine-stm",
                x: x.clone(),
                spec: raw_spec(SHARED_READ_LINES + threads),
                cfg: raw_config(threads, c_ops, seed),
                metrics: m,
                extra: Vec::new(),
            });
            let m = run_raw_concurrent(
                scenario,
                threads,
                c_ops,
                seed,
                ConcurrentBackend::Stm,
                false,
            );
            points.push(Point {
                system: "engine-stm-nometrics",
                x: x.clone(),
                spec: raw_spec(SHARED_READ_LINES + threads),
                cfg: raw_config(threads, c_ops, seed),
                metrics: m,
                extra: Vec::new(),
            });
            if euno_htm::hw_rtm_available() {
                let m = run_raw_concurrent(
                    scenario,
                    threads,
                    c_ops,
                    seed,
                    ConcurrentBackend::HwRtm,
                    true,
                );
                points.push(Point {
                    system: "engine-rtm",
                    x,
                    spec: raw_spec(SHARED_READ_LINES + threads),
                    cfg: raw_config(threads, c_ops, seed),
                    metrics: m,
                    extra: Vec::new(),
                });
            }
        }
        let x = format!("tree/t{threads}");
        if want(&x) {
            let (spec, cfg, m) = run_tree_virtual(threads, tree_ops, seed);
            points.push(Point {
                system: "engine-virtual",
                x,
                spec,
                cfg,
                metrics: m,
                extra: Vec::new(),
            });
        }
    }

    if !euno_htm::hw_rtm_available() {
        eprintln!(
            "note: engine-rtm rows skipped (build without --features hw-rtm, or CPU lacks RTM)"
        );
    }

    print_table(
        "Engine wall-clock throughput",
        &points,
        "episodes/sec (wall)",
        |m| m.throughput,
    );
    if let Some(csv) = &cli.csv {
        if let Err(e) = emit(
            "engine",
            "Engine wall-clock episode throughput (hit/read/conflict mixes + tree workload)",
            csv,
            &points,
        ) {
            eprintln!("FAIL emitting engine report: {e}");
            std::process::exit(1);
        }
    }
}
