//! Figure 8 — "Throughput under different contention rates (16 threads)":
//! the four systems of §5.1 plus the read-optimized Euno variant across
//! the Zipfian skew sweep (§5.2).
//!
//! Paper shape: Euno ≈ HTM-B+Tree (and ~37 % above Masstree) for θ < 0.6;
//! past θ = 0.6 the HTM-B+Tree collapses while Euno stays high — 11×
//! HTM-B+Tree and 1.65× Masstree at θ = 0.99 (18.6 vs 1.7 vs ~11 Mops/s);
//! HTM-Masstree trails everything.

use euno_bench::common::{emit, fig_config, measure, print_table, Cli, Point, System};

fn main() {
    let cli = Cli::parse();
    let mut cfg = fig_config(0xF1608, 20_000);
    cli.apply(&mut cfg);

    let thetas = [0.0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99];
    let mut points = Vec::new();
    for &theta in &thetas {
        let spec = cli.spec(theta);
        for system in System::MAIN_FIVE {
            let mut m = measure(system, &spec, &cfg);
            cli.post_cell(&mut m);
            eprintln!(
                "θ={theta:<4} {:<14} {:>8.2} Mops/s",
                system.label(),
                m.mops()
            );
            points.push(Point::new(system, theta, &spec, &cfg, m));
        }
    }

    print_table(
        "Figure 8: throughput vs contention, 16 threads",
        &points,
        "Mops/s",
        |m| m.mops(),
    );

    // Headline ratios of §5.2.
    let get = |x: &str, s: &str| {
        points
            .iter()
            .find(|p| p.x == x && p.system == s)
            .map(|p| p.metrics.mops())
            .unwrap_or(f64::NAN)
    };
    println!(
        "\nEuno/HTM-B+Tree at θ=0.99: {:.1}× (paper: ~11×)",
        get("0.99", "Euno-B+Tree") / get("0.99", "HTM-B+Tree")
    );
    println!(
        "Euno/Masstree at θ=0.99: {:.2}× (paper: ~1.65×)",
        get("0.99", "Euno-B+Tree") / get("0.99", "Masstree")
    );
    println!(
        "Euno/Masstree at θ=0.5: {:.2}× (paper: ~1.37×)",
        get("0.5", "Euno-B+Tree") / get("0.5", "Masstree")
    );
    if let Some(csv) = &cli.csv {
        emit(
            "fig08",
            "Figure 8: throughput vs contention, 16 threads",
            csv,
            &points,
        )
        .unwrap();
    }
}
