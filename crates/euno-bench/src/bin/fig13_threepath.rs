//! Figure 13 companion — three-path vs two-path executor under an abort
//! storm (§4.3 of DESIGN.md).
//!
//! Scenario: a single stubborn hot key. A tiny key range under a Zipfian
//! with θ → 1 funnels nearly every operation through one record, so the
//! classic two-path executor melts down into the global fallback: every
//! fallback acquisition serializes *all* threads, including those working
//! on unrelated keys. The three-path executor instead escalates the hot
//! key's operations onto its footprint slot lock — threads queue on one
//! advisory bit, the HTM path stays open for everyone else, and the global
//! fallback is reserved for genuine last-resort escalation.
//!
//! Reported per cell: throughput, global-fallback rate, middle-path rate
//! and p99 latency. The ablation claim is that at θ ≥ 0.99 three-path cuts
//! both the fallback rate and p99 relative to the same tree with
//! `two_path()` configured.

use euno_bench::common::{emit, fig_config, measure, Cli, Point, System};

fn main() {
    let cli = Cli::parse();
    // Each tree under both executors. Euno runs the middle path by
    // default (its two-path twin disables it); the HTM-B+Tree baseline
    // is paper-faithful two-path by default and opts in via
    // `three_path()`.
    let systems = [
        System::EunoBTree,
        System::EunoTwoPath,
        System::HtmBTree,
        System::HtmBTreeThreePath,
    ];

    let mut all = Vec::new();
    for theta in [0.99, 0.995, 0.999] {
        let mut spec = cli.spec(theta);
        // Stubborn hot key: collapse the key range so the Zipfian head is
        // a single record that every thread hammers. `--keys` still wins.
        spec.key_range = 64;
        cli.shrink(&mut spec);

        let mut cfg = fig_config(0x00F1_6133, 12_000);
        cfg.threads = 20;
        cli.apply(&mut cfg);

        println!(
            "\n== Figure 13 (three-path): abort storm, θ={theta}, {} keys ==",
            spec.key_range
        );
        println!(
            "{:<20} {:>9} {:>9} {:>9} {:>12}",
            "variant", "Mops/s", "fb_rate", "mid_rate", "p99 (cyc)"
        );
        for system in systems {
            let mut m = measure(system, &spec, &cfg);
            cli.post_cell(&mut m);
            let commits = m.stages.commits.max(1) as f64;
            println!(
                "{:<20} {:>9.2} {:>9.4} {:>9.4} {:>12}",
                system.label(),
                m.mops(),
                m.stages.fallbacks as f64 / commits,
                m.stages.middles as f64 / commits,
                m.latency.quantile(0.99),
            );
            all.push(Point::new(system, theta, &spec, &cfg, m));
        }
    }

    if let Some(csv) = &cli.csv {
        emit(
            "fig13_threepath",
            "Figure 13 (three-path): two-path vs three-path under an abort storm, 20 threads",
            csv,
            &all,
        )
        .unwrap();
    }
}
