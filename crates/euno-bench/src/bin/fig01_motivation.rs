//! Figure 1 — "Performance under different contention rates": throughput
//! of the conventional HTM-B+Tree as the Zipfian skew coefficient θ grows,
//! at 16 threads (§2.3).
//!
//! Paper shape: high, stable throughput for θ < 0.6; sharp collapse past
//! θ ≈ 0.6; below 3 Mops/s at θ = 0.9.

use euno_bench::common::{emit, fig_config, measure, print_table, Cli, Point, System};

fn main() {
    let cli = Cli::parse();
    let mut cfg = fig_config(0xF1601, 20_000);
    cli.apply(&mut cfg);

    let thetas = [0.0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99];
    let mut points = Vec::new();
    for &theta in &thetas {
        let spec = cli.spec(theta);
        let mut m = measure(System::HtmBTree, &spec, &cfg);
        cli.post_cell(&mut m);
        eprintln!(
            "θ={theta:<4}  {:>8.2} Mops/s  {:>7.2} aborts/op  {:>5.1}% cycles wasted",
            m.mops(),
            m.aborts_per_op,
            100.0 * m.wasted_cycle_fraction
        );
        points.push(Point::new(System::HtmBTree, theta, &spec, &cfg, m));
    }

    print_table(
        "Figure 1: HTM-B+Tree throughput vs contention",
        &points,
        "Mops/s",
        |m| m.mops(),
    );
    if let Some(csv) = &cli.csv {
        emit(
            "fig01",
            "Figure 1: HTM-B+Tree throughput vs contention",
            csv,
            &points,
        )
        .unwrap();
    }
}
