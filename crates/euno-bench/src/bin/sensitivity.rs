//! Cost-model sensitivity: is the paper's qualitative result an artifact
//! of our calibration constants?
//!
//! Sweeps the two most load-bearing knobs of the virtual-time model — the
//! hot-line transfer charge (NUMA/coherence cost) and the per-region
//! conflict-retry budget (DBX fallback policy) — and reports the
//! high-contention ordering each setting produces. The claim that must
//! survive every cell: **Euno-B+Tree > Masstree > monolithic HTM-B+Tree at
//! θ = 0.9**, with Euno close to the baseline at θ = 0.2.

use euno_bench::common::{emit, fig_config, Cli, Point, System};
use euno_htm::{CostModel, Mode, Runtime};
use euno_sim::{preload, run_virtual, strategy_for, RunConfig, RunMetrics};
use euno_workloads::WorkloadSpec;

fn measure_with(
    system: System,
    cost: CostModel,
    spec: &WorkloadSpec,
    cfg: &RunConfig,
    cli: &Cli,
) -> RunMetrics {
    let rt = Runtime::new(Mode::Virtual, cost);
    let map = system.build_with_strategy(&rt, strategy_for(spec.policy));
    preload(map.as_ref(), &rt, spec);
    rt.reset_dynamics();
    let mut m = run_virtual(map.as_ref(), &rt, spec, cfg);
    cli.post_cell(&mut m);
    m
}

fn main() {
    let cli = Cli::parse();
    let high = cli.spec(0.9);
    let low = cli.spec(0.2);
    let mut cfg = fig_config(0x5E45, 10_000);
    cli.apply(&mut cfg);
    let mut points: Vec<Point> = Vec::new();
    // The swept knob rides along in each point's `extra` object; the
    // report's top-level cost_model block stays the default constants.
    let mut push = |system: System,
                    x: String,
                    knob: &str,
                    value: f64,
                    spec: &WorkloadSpec,
                    cfg: &RunConfig,
                    m: RunMetrics| {
        points.push(Point::new(system, x, spec, cfg, m).with_extra(knob, value));
    };

    println!("== Sensitivity: hot-line transfer charge (θ=0.9, 16 thr) ==");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>10}",
        "transfer", "Euno", "HTM-B+Tree", "Masstree", "Euno/HTM"
    );
    for transfer in [60u64, 120, 180, 300, 450] {
        let cost = CostModel {
            line_transfer: transfer,
            ..CostModel::default()
        };
        let euno = measure_with(System::EunoBTree, cost.clone(), &high, &cfg, &cli);
        let htm = measure_with(System::HtmBTree, cost.clone(), &high, &cfg, &cli);
        let mt = measure_with(System::Masstree, cost.clone(), &high, &cfg, &cli);
        println!(
            "{transfer:>10} {:>12.2} {:>12.2} {:>12.2} {:>9.1}x",
            euno.mops(),
            htm.mops(),
            mt.mops(),
            euno.mops() / htm.mops()
        );
        assert!(
            euno.mops() > htm.mops(),
            "ordering must hold at transfer={transfer}"
        );
        let x = format!("transfer={transfer}");
        push(
            System::EunoBTree,
            x.clone(),
            "line_transfer",
            transfer as f64,
            &high,
            &cfg,
            euno,
        );
        push(
            System::HtmBTree,
            x.clone(),
            "line_transfer",
            transfer as f64,
            &high,
            &cfg,
            htm,
        );
        push(
            System::Masstree,
            x,
            "line_transfer",
            transfer as f64,
            &high,
            &cfg,
            mt,
        );
    }

    println!("\n== Sensitivity: retry backoff cap (θ=0.9, 16 thr) ==");
    println!(
        "{:>10} {:>12} {:>12} {:>10}",
        "cap", "Euno", "HTM-B+Tree", "Euno/HTM"
    );
    for cap in [300u64, 1_200, 4_800, 12_000] {
        let cost = CostModel {
            backoff_cap: cap,
            ..CostModel::default()
        };
        let euno = measure_with(System::EunoBTree, cost.clone(), &high, &cfg, &cli);
        let htm = measure_with(System::HtmBTree, cost.clone(), &high, &cfg, &cli);
        println!(
            "{cap:>10} {:>12.2} {:>12.2} {:>9.1}x",
            euno.mops(),
            htm.mops(),
            euno.mops() / htm.mops()
        );
        assert!(
            euno.mops() > htm.mops(),
            "ordering must hold at backoff cap {cap}"
        );
        let x = format!("cap={cap}");
        push(
            System::EunoBTree,
            x.clone(),
            "backoff_cap",
            cap as f64,
            &high,
            &cfg,
            euno,
        );
        push(
            System::HtmBTree,
            x,
            "backoff_cap",
            cap as f64,
            &high,
            &cfg,
            htm,
        );
    }

    println!("\n== Sensitivity: low-contention overhead (θ=0.2) ==");
    for transfer in [60u64, 180, 450] {
        let cost = CostModel {
            line_transfer: transfer,
            ..CostModel::default()
        };
        let euno = measure_with(System::EunoBTree, cost.clone(), &low, &cfg, &cli);
        let htm = measure_with(System::HtmBTree, cost.clone(), &low, &cfg, &cli);
        println!(
            "transfer={transfer:<4} Euno {:>8.2} vs HTM {:>8.2}  ({:.0}% overhead)",
            euno.mops(),
            htm.mops(),
            100.0 * (1.0 - euno.mops() / htm.mops())
        );
        let x = format!("low/transfer={transfer}");
        push(
            System::EunoBTree,
            x.clone(),
            "line_transfer",
            transfer as f64,
            &low,
            &cfg,
            euno,
        );
        push(
            System::HtmBTree,
            x,
            "line_transfer",
            transfer as f64,
            &low,
            &cfg,
            htm,
        );
    }
    println!("\nordering robust across the sweep ✓");

    if let Some(csv) = &cli.csv {
        emit("sensitivity", "Cost-model sensitivity sweeps", csv, &points).unwrap();
    }
}
