//! Figure 11 — "Performance under different get/put ratios in Zipfian
//! distribution" (θ = 0.9): thread-scalability at get fractions 0 %,
//! 20 %, 50 % and 70 % (§5.4).
//!
//! Paper shape: Euno scales near-linearly at every mix; its advantage is
//! largest at 100 % puts; Masstree scales too but sits ~25 % below Euno
//! on average; the HTM-B+Tree stays collapsed.

use euno_bench::common::{emit, fig_config, measure, print_table, Cli, Point, System};
use euno_workloads::{OpMix, WorkloadSpec};

fn main() {
    let cli = Cli::parse();
    let thread_counts = [1usize, 2, 4, 8, 12, 16, 20];
    let mut all = Vec::new();

    for get_pct in [0u32, 20, 50, 70] {
        let spec = WorkloadSpec {
            mix: OpMix::get_put(get_pct as f64 / 100.0),
            ..cli.spec(0.9)
        };
        let mut points = Vec::new();
        for &threads in &thread_counts {
            let mut cfg = fig_config(0xF1611 + get_pct as u64, 15_000);
            cfg.threads = threads;
            if let Some(ops) = cli.ops_override {
                cfg.ops_per_thread = ops;
            }
            for system in System::MAIN_FOUR {
                let mut m = measure(system, &spec, &cfg);
                cli.post_cell(&mut m);
                eprintln!(
                    "get={get_pct:<2}% threads={threads:<2} {:<14} {:>8.2} Mops/s",
                    system.label(),
                    m.mops()
                );
                points.push(Point::new(system, threads, &spec, &cfg, m));
            }
        }
        print_table(
            &format!("Figure 11: {get_pct}% get / {}% put, θ=0.9", 100 - get_pct),
            &points,
            "Mops/s",
            |m| m.mops(),
        );
        all.extend(points.into_iter().map(|mut p| {
            p.x = format!("{get_pct}get/{}", p.x);
            p
        }));
    }

    if let Some(csv) = &cli.csv {
        emit(
            "fig11",
            "Figure 11: scalability across get/put ratios, θ=0.9",
            csv,
            &all,
        )
        .unwrap();
    }
}
