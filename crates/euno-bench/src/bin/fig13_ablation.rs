//! Figure 13 — "Impact of Different Design Choices": the ablation ladder
//! at 20 threads under high (θ = 0.9) and low (θ = 0.2) contention,
//! reported relative to the HTM-B+Tree baseline (§5.6).
//!
//! Paper numbers (high contention): +Split HTM 1.83×, +Part Leaf 4.58×,
//! +CCM lockbits 9.68×, +CCM markbits 11.10×. Low-contention overheads:
//! −3 % (split), −4 % (part leaf), −8 %/−2 % (CCM), recovered to −2 % by
//! +Adaptive.

use euno_bench::common::{emit, fig_config, measure, Cli, Point, System};

fn main() {
    let cli = Cli::parse();
    let ladder = [
        System::HtmBTree, // "Baseline"
        System::AblationSplitHtm,
        System::AblationPartLeaf,
        System::AblationCcmLockbits,
        System::AblationCcmMarkbits,
        System::AblationAdaptive,
    ];

    let mut all = Vec::new();
    for (theta, label) in [(0.9, "high contention"), (0.2, "low contention")] {
        let spec = cli.spec(theta);
        let mut cfg = fig_config(0xF1613, 15_000);
        cfg.threads = 20;
        cli.apply(&mut cfg);

        println!("\n== Figure 13: design-choice ladder, {label} (θ={theta}) ==");
        println!("{:<16} {:>10} {:>10}", "variant", "Mops/s", "relative");
        let mut baseline = f64::NAN;
        for system in ladder {
            let mut m = measure(system, &spec, &cfg);
            cli.post_cell(&mut m);
            if system == System::HtmBTree {
                baseline = m.mops();
            }
            let name = if system == System::HtmBTree {
                "Baseline"
            } else {
                system.label()
            };
            println!(
                "{name:<16} {:>10.2} {:>9.2}x",
                m.mops(),
                m.mops() / baseline
            );
            let mut p = Point::new(system, theta, &spec, &cfg, m);
            p.system = name;
            all.push(p);
        }
    }

    if let Some(csv) = &cli.csv {
        emit(
            "fig13",
            "Figure 13: design-choice ablation ladder, 20 threads",
            csv,
            &all,
        )
        .unwrap();
    }
}
