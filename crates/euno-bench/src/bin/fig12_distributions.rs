//! Figure 12 — "Performance with different input distributions under high
//! contention": thread-scalability under Poisson, Normal, Self-similar
//! and Zipfian(0.9) request distributions, all at 50/50 get/put (§5.5).
//!
//! Paper shape: Euno scales under every distribution; the HTM-B+Tree
//! collapses past 2–4 threads under Poisson/Self-similar/Zipfian and
//! stays flat-low under Normal (densest hot set); Masstree is stable but
//! 38–51 % (≈40 %) below Euno.

use euno_bench::common::{emit, fig_config, measure, print_table, Cli, Point, System};
use euno_workloads::{KeyDistribution, WorkloadSpec};

fn main() {
    let cli = Cli::parse();
    let thread_counts = [1usize, 2, 4, 8, 12, 16, 20];
    let dists: [(&str, KeyDistribution); 4] = [
        ("Poisson", KeyDistribution::poisson_paper()),
        ("Normal", KeyDistribution::normal_paper()),
        ("Self-Similar", KeyDistribution::self_similar_paper()),
        (
            "Zipfian",
            KeyDistribution::Zipfian {
                theta: 0.9,
                scramble: false,
            },
        ),
    ];
    let mut all = Vec::new();

    for (name, dist) in dists {
        let spec = WorkloadSpec {
            dist,
            ..cli.spec(0.9)
        };
        let mut points = Vec::new();
        for &threads in &thread_counts {
            let mut cfg = fig_config(0xF1612, 15_000);
            cfg.threads = threads;
            if let Some(ops) = cli.ops_override {
                cfg.ops_per_thread = ops;
            }
            for system in System::MAIN_FOUR {
                let mut m = measure(system, &spec, &cfg);
                cli.post_cell(&mut m);
                eprintln!(
                    "{name:<13} threads={threads:<2} {:<14} {:>8.2} Mops/s",
                    system.label(),
                    m.mops()
                );
                points.push(Point::new(system, threads, &spec, &cfg, m));
            }
        }
        print_table(
            &format!("Figure 12: {name} distribution"),
            &points,
            "Mops/s",
            |m| m.mops(),
        );
        all.extend(points.into_iter().map(|mut p| {
            p.x = format!("{name}/{}", p.x);
            p
        }));
    }

    if let Some(csv) = &cli.csv {
        emit(
            "fig12",
            "Figure 12: scalability across input distributions",
            csv,
            &all,
        )
        .unwrap();
    }
}
