//! The full YCSB core suite (workloads A–F) over the four §5.1 trees
//! plus the read-optimized Euno variant — the library-level benchmark a
//! downstream key-value-store user would run, extending the paper's
//! 50/50 sweep to the standard mixes, with latency quantiles from the
//! virtual-time histogram. The read-mostly rows (B: 95 % reads, C: 100 %
//! reads) are where Euno-ReadOpt's episode-free gets pay off.
//!
//! ```sh
//! cargo run --release -p euno-bench --bin ycsb_suite [-- --theta 0.9]
//! ```

use std::sync::Arc;

use euno_bench::common::{emit, fig_config, Cli, Point, System};
use euno_htm::{ConcurrentMap, Runtime, ThreadCtx};
use euno_sim::{preload, strategy_for, RunConfig, VirtualScheduler};
use euno_workloads::{Op, PolicyChoice, WorkloadSpec, YcsbOp, YcsbStream, YcsbWorkload};

fn run_ycsb(
    system: System,
    workload: YcsbWorkload,
    theta: f64,
    policy: PolicyChoice,
    cli: &Cli,
    cfg: &RunConfig,
) -> (euno_sim::RunMetrics, WorkloadSpec) {
    let rt = Runtime::new_virtual();
    let map = system.build_with_strategy(&rt, strategy_for(policy));
    let mut spec = workload.spec(200_000, theta);
    spec.base.policy = policy;
    cli.shrink(&mut spec.base);
    preload(map.as_ref(), &rt, &spec.base);
    rt.reset_dynamics();

    let mut sched = VirtualScheduler::new(Arc::clone(&rt));
    if let Some(cap) = cfg.effective_trace_capacity() {
        sched.set_trace_capacity(cap);
    }
    for t in 0..cfg.threads {
        let mut stream = YcsbStream::new(&spec, t as u64, cfg.threads as u64, cfg.seed);
        let mut warmup = cfg.warmup_ops;
        let mut left = cfg.ops_per_thread;
        let map_ref: &dyn ConcurrentMap = map.as_ref();
        let mut scan_buf: Vec<(u64, u64)> = Vec::new();
        sched.add_thread(
            cfg.seed + t as u64,
            Box::new(move |ctx: &mut ThreadCtx| {
                let measuring = warmup == 0;
                if warmup > 0 {
                    warmup -= 1;
                    if warmup == 0 {
                        ctx.stats.measure_start_cycles = Some(ctx.clock);
                    }
                } else if left == 0 {
                    return false;
                } else {
                    left -= 1;
                }
                let saved = (!measuring).then(|| ctx.stats.clone());
                ctx.charge(ctx.runtime().cost.op_overhead);
                match stream.next_op() {
                    YcsbOp::Simple(Op::Get { key }) => {
                        map_ref.get(ctx, key);
                    }
                    YcsbOp::Simple(Op::Put { key, value }) => {
                        map_ref.put(ctx, key, value);
                    }
                    YcsbOp::Simple(Op::Delete { key }) => {
                        map_ref.delete(ctx, key);
                    }
                    YcsbOp::Simple(Op::Scan { from, len }) => {
                        scan_buf.clear();
                        map_ref.scan(ctx, from, len, &mut scan_buf);
                    }
                    YcsbOp::ReadModifyWrite { key, delta } => {
                        // Composite: read the value, derive, write back.
                        let v = map_ref.get(ctx, key).unwrap_or(0);
                        map_ref.put(ctx, key, (v + delta) & 0x7fff_ffff_ffff_ffff);
                    }
                }
                if let Some(saved) = saved {
                    ctx.stats = saved;
                } else {
                    ctx.stats.ops += 1;
                }
                true
            }),
        );
    }
    let mut m = sched.run();
    euno_sim::attach_profile(&mut m, &rt, cfg);
    cli.post_cell(&mut m);
    (m, spec.base)
}

fn main() {
    let cli = Cli::parse();
    let theta = cli.theta(0.9);
    let policy = cli.policy.unwrap_or_default();
    let mut cfg = fig_config(0x4C5B, 10_000);
    cli.apply(&mut cfg);

    println!(
        "== YCSB core suite, θ={theta}, policy={}, {} virtual threads ==\n",
        policy.label(),
        cfg.threads
    );
    let mut points = Vec::new();
    for workload in YcsbWorkload::ALL {
        println!("{}", workload.label());
        println!(
            "  {:<14} {:>9} {:>11} {:>9} {:>9} {:>10}",
            "system", "Mops/s", "aborts/op", "p50", "p99", "p99.9"
        );
        for system in System::MAIN_FIVE {
            let (m, base) = run_ycsb(system, workload, theta, policy, &cli, &cfg);
            println!(
                "  {:<14} {:>9.2} {:>11.4} {:>9} {:>9} {:>10}",
                system.label(),
                m.mops(),
                m.aborts_per_op,
                m.latency.quantile(0.50),
                m.latency.quantile(0.99),
                m.latency.quantile(0.999),
            );
            points.push(Point::new(system, workload.label(), &base, &cfg, m));
        }
        println!();
    }
    if let Some(csv) = &cli.csv {
        emit("ycsb", "YCSB core suite A-F, all systems", csv, &points).unwrap();
    }
}
