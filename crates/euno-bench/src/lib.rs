//! # euno-bench — the paper's evaluation, regenerated
//!
//! One binary per table/figure of §5 (run with `cargo run --release -p
//! euno-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig01_motivation` | Fig. 1 — HTM-B+Tree collapse vs θ |
//! | `fig02_abort_breakdown` | Fig. 2 — abort taxonomy vs θ + §2.3 stats |
//! | `fig08_throughput` | Fig. 8 — 4 systems vs θ |
//! | `fig09_abort_comparison` | Fig. 9 — aborts/op, Euno vs HTM-B+Tree |
//! | `fig10_scalability` | Fig. 10 — threads × 4 contention levels |
//! | `fig11_getput_ratio` | Fig. 11 — get/put mixes at θ=0.9 |
//! | `fig12_distributions` | Fig. 12 — Poisson/Normal/Self-similar/Zipfian |
//! | `fig13_ablation` | Fig. 13 — design-choice ladder |
//! | `mem_overhead` | §5.7 — memory consumption analysis |
//! | `ycsb_suite` | YCSB core A–F with latency quantiles (beyond the paper) |
//! | `sensitivity` | cost-model robustness sweep (beyond the paper) |
//!
//! All binaries accept `--csv <path>`, `--ops <n>`, `--threads <n>`, and
//! honour `EUNO_BENCH_SCALE` for quick runs. Criterion microbenches live
//! in `benches/`.

pub mod common;
