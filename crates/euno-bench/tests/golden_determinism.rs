//! Golden-determinism regression gate for the virtual-time engine.
//!
//! Runs a fixed-seed virtual-mode workload on all four systems and hashes
//! the resulting `RunReport` JSON against a checked-in digest. Every cycle
//! charge, RNG draw and conflict decision feeds the report, so any edit to
//! the engine hot path that perturbs the simulated schedule — a reordered
//! lock acquisition, a skipped storm draw, a changed prune horizon —
//! changes the digest and fails here, loudly, instead of silently shifting
//! every figure.
//!
//! The hash covers the full document (throughput, abort taxonomy, stage
//! counters, latency quantiles) minus the two provenance fields that are
//! legitimately environment-dependent: `git` (working-tree revision) and
//! `bench_scale` (`EUNO_BENCH_SCALE`). Cross-process stability holds
//! because virtual-mode elapsed time is derived from cycle counts (not
//! wall time), every tree node is `repr(C, align(64))` (so line-relative
//! layout is address-independent), and conflict-line *selection* ranks
//! candidate lines by class-registration order, not raw address — without
//! that last property, `heat.end` ties in the storm extrapolation would
//! break on heap-address order and the digest would flip with the
//! allocator's address layout (which varies with environment size and
//! ASLR). The one remaining address sensitivity is the summation order of
//! per-line `f64` survival terms in the storm check; a reordering there
//! perturbs the compared probability by ~1 ulp (~1e-16 per draw), far
//! below any threshold the workload approaches.

use euno_bench::common::{measure, System};
use euno_htm::CostModel;
use euno_sim::{Json, RunConfig, RunEntry, RunReport};
use euno_workloads::WorkloadSpec;

/// Expected FNV-1a 64 digest of the normalized report. If an intentional
/// semantic change (new cost constant, different conflict rule) moves it,
/// rerun the test and update this value with the printed digest — but
/// never for a "pure performance" refactor, which must keep it
/// bit-identical.
const GOLDEN_DIGEST: &str = "42530f0911227b68";

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The fixed workload: skewed enough to exercise conflicts, aborts, the
/// fallback path and storm extrapolation on every system, small enough to
/// finish in seconds.
fn golden_spec() -> WorkloadSpec {
    let mut spec = WorkloadSpec::paper_default(0.9);
    spec.key_range = 20_000;
    spec
}

fn golden_config() -> RunConfig {
    RunConfig {
        threads: 8,
        ops_per_thread: 1_200,
        seed: 0x60_1d_e4,
        warmup_ops: 300,
        trace_capacity: 0,
        profile: false,
        sample_every: 0,
        sample_capacity: 0,
    }
}

/// Serialize the report and pin the provenance fields that are
/// legitimately schedule-independent so the digest only reflects
/// simulated behaviour: `git` and `bench_scale` vary with the
/// environment, and `schema_version` is document-format provenance — a
/// schema bump that adds sections without touching the engine must keep
/// the digest stable (it is pinned to the v2 value the digest was first
/// computed against).
fn normalized_report_text(report: &RunReport) -> String {
    let mut doc = report.to_json();
    if let Json::Obj(fields) = &mut doc {
        for (k, v) in fields.iter_mut() {
            match k.as_str() {
                "git" => *v = Json::str("golden"),
                "bench_scale" => *v = Json::Num(1.0),
                "schema_version" => *v = Json::u64(2),
                _ => {}
            }
        }
    }
    doc.to_pretty()
}

/// Single test on purpose: the digest is sensitive to heap layout only
/// through *allocator reuse* (a freed node's line re-registered by a node
/// of a different class), which is deterministic for a fixed allocation
/// sequence — but libtest runs a binary's tests on concurrent threads, and
/// a second test interleaving its own allocations perturbs block reuse
/// nondeterministically. One `#[test]` keeps the process single-threaded
/// and the sequence fixed; the within-process determinism check (which
/// isolates "nondeterminism" failures from "semantics changed" failures)
/// therefore runs inside it, after the digest.
#[test]
fn fixed_seed_run_reports_are_byte_identical_to_golden_digest() {
    let spec = golden_spec();
    let cfg = golden_config();
    let mut report = RunReport::new(
        "golden",
        "Golden determinism gate: four systems, fixed seed",
        CostModel::default(),
    );
    for system in System::MAIN_FOUR {
        let metrics = measure(system, &spec, &cfg);
        assert!(metrics.total_ops > 0, "{:?} ran no ops", system);
        report.runs.push(RunEntry {
            system: system.label().to_string(),
            x: "golden".to_string(),
            spec: spec.clone(),
            cfg: cfg.clone(),
            metrics,
            extra: Vec::new(),
        });
    }
    let text = normalized_report_text(&report);
    if let Ok(dst) = std::env::var("GOLDEN_DUMP") {
        std::fs::write(dst, &text).unwrap();
    }
    let digest = format!("{:016x}", fnv1a64(text.as_bytes()));
    assert_eq!(
        digest,
        GOLDEN_DIGEST,
        "virtual-mode schedule changed: the run report no longer matches \
         the checked-in golden digest.\n\
         If (and only if) the change is intentionally semantic, update \
         GOLDEN_DIGEST to {digest}.\n--- normalized report was {} bytes ---",
        text.len()
    );

    // Within-process determinism: two further runs of one system agree
    // exactly (see the comment above for why this shares the test).
    let a = measure(System::EunoBTree, &spec, &cfg);
    let b = measure(System::EunoBTree, &spec, &cfg);
    assert_eq!(a.total_ops, b.total_ops);
    assert_eq!(a.stats.cycles_total, b.stats.cycles_total);
    assert_eq!(a.aborts.total(), b.aborts.total());
    assert_eq!(a.elapsed_secs, b.elapsed_secs);
}
