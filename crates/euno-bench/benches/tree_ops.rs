//! Criterion microbenches: single-operation latency of each tree under a
//! single-threaded virtual context. These measure the *implementation*
//! cost of this reproduction (wall time per op on the host), complementing
//! the virtual-time figure binaries which measure the *modelled* machine.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use euno_baselines::{HtmBTree, HtmMasstree, Masstree};
use euno_core::EunoBTreeDefault;
use euno_htm::{ConcurrentMap, Runtime};
use euno_workloads::{KeyDistribution, KeySampler};

fn build_all(rt: &Arc<Runtime>) -> Vec<Box<dyn ConcurrentMap>> {
    vec![
        Box::new(EunoBTreeDefault::new(Arc::clone(rt))),
        Box::new(HtmBTree::<16>::new(Arc::clone(rt))),
        Box::new(Masstree::new(Arc::clone(rt))),
        Box::new(HtmMasstree::new(Arc::clone(rt))),
    ]
}

fn preload_all(rt: &Arc<Runtime>, maps: &[Box<dyn ConcurrentMap>]) {
    let mut ctx = rt.thread(1);
    for m in maps {
        for k in 0..10_000u64 {
            m.put(&mut ctx, k * 2, k);
        }
    }
    rt.reset_dynamics();
}

fn zipf_sampler() -> KeySampler {
    KeySampler::new(
        &KeyDistribution::Zipfian {
            theta: 0.9,
            scramble: false,
        },
        20_000,
    )
}

fn bench_get(c: &mut Criterion) {
    let rt = Runtime::new_virtual();
    let maps = build_all(&rt);
    preload_all(&rt, &maps);
    let sampler = zipf_sampler();
    let mut group = c.benchmark_group("get_zipf09");
    for m in &maps {
        group.bench_with_input(BenchmarkId::from_parameter(m.name()), m, |b, m| {
            let mut ctx = rt.thread(2);
            b.iter(|| {
                let k = sampler.sample(ctx.rng());
                std::hint::black_box(m.get(&mut ctx, k))
            });
        });
    }
    group.finish();
}

fn bench_put(c: &mut Criterion) {
    let rt = Runtime::new_virtual();
    let maps = build_all(&rt);
    preload_all(&rt, &maps);
    let sampler = zipf_sampler();
    let mut group = c.benchmark_group("put_zipf09");
    for m in &maps {
        group.bench_with_input(BenchmarkId::from_parameter(m.name()), m, |b, m| {
            let mut ctx = rt.thread(3);
            let mut v = 0u64;
            b.iter(|| {
                let k = sampler.sample(ctx.rng());
                v += 1;
                std::hint::black_box(m.put(&mut ctx, k, v))
            });
        });
    }
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let rt = Runtime::new_virtual();
    let maps = build_all(&rt);
    preload_all(&rt, &maps);
    let mut group = c.benchmark_group("scan16");
    for m in &maps {
        group.bench_with_input(BenchmarkId::from_parameter(m.name()), m, |b, m| {
            let mut ctx = rt.thread(4);
            let mut out = Vec::with_capacity(16);
            let mut from = 0u64;
            b.iter(|| {
                out.clear();
                from = (from + 97) % 9_000;
                std::hint::black_box(m.scan(&mut ctx, from, 16, &mut out))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_get, bench_put, bench_scan
}
criterion_main!(benches);
