//! Microbenches: single-operation latency of each tree under a
//! single-threaded virtual context. These measure the *implementation*
//! cost of this reproduction (wall time per op on the host), complementing
//! the virtual-time figure binaries which measure the *modelled* machine.
//!
//! Plain self-timed harness (`harness = false`): run with
//! `cargo bench -p euno-bench`. Each benchmark reports mean ns/op over a
//! fixed iteration budget after a warmup pass.

use std::sync::Arc;
use std::time::Instant;

use euno_baselines::{HtmBTree, HtmMasstree, Masstree};
use euno_core::EunoBTreeDefault;
use euno_htm::{ConcurrentMap, Runtime};
use euno_workloads::{KeyDistribution, KeySampler};

const WARMUP_ITERS: u64 = 20_000;
const MEASURE_ITERS: u64 = 200_000;

fn build_all(rt: &Arc<Runtime>) -> Vec<Box<dyn ConcurrentMap>> {
    vec![
        Box::new(EunoBTreeDefault::new(Arc::clone(rt))),
        Box::new(HtmBTree::<16>::new(Arc::clone(rt))),
        Box::new(Masstree::new(Arc::clone(rt))),
        Box::new(HtmMasstree::new(Arc::clone(rt))),
    ]
}

fn preload_all(rt: &Arc<Runtime>, maps: &[Box<dyn ConcurrentMap>]) {
    let mut ctx = rt.thread(1);
    for m in maps {
        for k in 0..10_000u64 {
            m.put(&mut ctx, k * 2, k);
        }
    }
    rt.reset_dynamics();
}

fn zipf_sampler() -> KeySampler {
    KeySampler::new(
        &KeyDistribution::Zipfian {
            theta: 0.9,
            scramble: false,
        },
        20_000,
    )
}

/// Time `body` for `iters` iterations and return mean ns/op.
fn time_ns(iters: u64, mut body: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        body();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn bench_group(name: &str, mut run: impl FnMut(&dyn ConcurrentMap, &Arc<Runtime>) -> f64) {
    println!("{name}");
    let rt = Runtime::new_virtual();
    let maps = build_all(&rt);
    preload_all(&rt, &maps);
    for m in &maps {
        let ns = run(m.as_ref(), &rt);
        println!("  {:<24} {:>10.1} ns/op", m.name(), ns);
    }
}

fn main() {
    bench_group("get_zipf09", |m, rt| {
        let sampler = zipf_sampler();
        let mut ctx = rt.thread(2);
        let mut go = |iters| {
            time_ns(iters, || {
                let k = sampler.sample(ctx.rng());
                std::hint::black_box(m.get(&mut ctx, k));
            })
        };
        go(WARMUP_ITERS);
        go(MEASURE_ITERS)
    });

    bench_group("put_zipf09", |m, rt| {
        let sampler = zipf_sampler();
        let mut ctx = rt.thread(3);
        let mut v = 0u64;
        let mut go = |iters| {
            time_ns(iters, || {
                let k = sampler.sample(ctx.rng());
                v += 1;
                std::hint::black_box(m.put(&mut ctx, k, v));
            })
        };
        go(WARMUP_ITERS);
        go(MEASURE_ITERS)
    });

    bench_group("scan16", |m, rt| {
        let mut ctx = rt.thread(4);
        let mut out = Vec::with_capacity(16);
        let mut from = 0u64;
        let mut go = |iters| {
            time_ns(iters, || {
                out.clear();
                from = (from + 97) % 9_000;
                std::hint::black_box(m.scan(&mut ctx, from, 16, &mut out));
            })
        };
        go(WARMUP_ITERS / 4);
        go(MEASURE_ITERS / 4)
    });
}
