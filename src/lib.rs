//! # eunomia — umbrella crate
//!
//! Re-exports the whole Eunomia reproduction (Wang et al., *Eunomia:
//! Scaling Concurrent Search Trees under Contention Using HTM*, PPoPP
//! 2017) behind one dependency:
//!
//! * [`htm`] — the software HTM engine (TSX-like cache-line conflict
//!   detection, two execution modes),
//! * [`tree`] — Euno-B+Tree, the paper's contribution,
//! * [`baselines`] — HTM-B+Tree, Masstree, HTM-Masstree comparators,
//! * [`workloads`] — YCSB-style key distributions and op mixes,
//! * [`sim`] — the virtual-time experiment harness,
//! * [`check`] — history recording, the linearizability oracle, and the
//!   real-thread stress harness.
//!
//! ```
//! use eunomia::prelude::*;
//! use std::sync::Arc;
//!
//! let rt = Runtime::new_virtual();
//! let tree = EunoBTreeDefault::new(Arc::clone(&rt));
//! let mut ctx = rt.thread(0);
//! tree.put(&mut ctx, 1, 100);
//! assert_eq!(tree.get(&mut ctx, 1), Some(100));
//! ```

pub use euno_baselines as baselines;
pub use euno_check as check;
pub use euno_core as tree;
pub use euno_htm as htm;
pub use euno_sim as sim;
pub use euno_workloads as workloads;

/// The names almost every user of this workspace needs.
pub mod prelude {
    pub use euno_baselines::{HtmBTree, HtmMasstree, Masstree};
    pub use euno_check::{StressConfig, StressReport, Verdict};
    pub use euno_core::{EunoBTree, EunoBTreeDefault, EunoBTreeUnpartitioned, EunoConfig};
    pub use euno_htm::{ConcurrentMap, CostModel, Mode, Runtime, ThreadCtx};
    pub use euno_sim::{
        preload, run_concurrent, run_virtual, RunConfig, RunMetrics, VirtualScheduler,
    };
    pub use euno_workloads::{KeyDistribution, Op, OpMix, OpStream, Preload, WorkloadSpec};
}
