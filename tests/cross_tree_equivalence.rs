//! Cross-system semantic equivalence: the four trees are interchangeable
//! ordered maps. Every system executes the same randomized operation
//! sequence and must agree with a `BTreeMap` model (and therefore with
//! each other) on every reply.

use std::collections::BTreeMap;
use std::sync::Arc;

use eunomia::prelude::*;

fn systems(rt: &Arc<Runtime>) -> Vec<Box<dyn ConcurrentMap>> {
    vec![
        Box::new(EunoBTreeDefault::new(Arc::clone(rt))),
        Box::new(EunoBTreeUnpartitioned::with_config(
            Arc::clone(rt),
            EunoConfig::split_htm_only(),
        )),
        Box::new(HtmBTree::<16>::new(Arc::clone(rt))),
        Box::new(Masstree::new(Arc::clone(rt))),
        Box::new(HtmMasstree::new(Arc::clone(rt))),
    ]
}

struct Xorshift(u64);
impl Xorshift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[test]
fn all_systems_match_the_model() {
    let rt = Runtime::new_virtual();
    for map in systems(&rt) {
        let mut ctx = rt.thread(1);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut rng = Xorshift(0xC0FFEE ^ map.name().len() as u64);
        for step in 0..8_000 {
            let key = rng.next() % 400;
            match rng.next() % 12 {
                0..=5 => {
                    let v = rng.next() % 1_000_000;
                    assert_eq!(
                        map.put(&mut ctx, key, v),
                        model.insert(key, v),
                        "{} put {key} at step {step}",
                        map.name()
                    );
                }
                6..=7 => {
                    assert_eq!(
                        map.delete(&mut ctx, key),
                        model.remove(&key),
                        "{} delete {key} at step {step}",
                        map.name()
                    );
                }
                8..=10 => {
                    assert_eq!(
                        map.get(&mut ctx, key),
                        model.get(&key).copied(),
                        "{} get {key} at step {step}",
                        map.name()
                    );
                }
                _ => {
                    let mut got = Vec::new();
                    map.scan(&mut ctx, key, 7, &mut got);
                    let expect: Vec<(u64, u64)> =
                        model.range(key..).take(7).map(|(&k, &v)| (k, v)).collect();
                    assert_eq!(got, expect, "{} scan {key} at step {step}", map.name());
                }
            }
        }
    }
}

#[test]
fn scans_agree_across_systems_after_identical_load() {
    let rt = Runtime::new_virtual();
    let maps = systems(&rt);
    let mut ctx = rt.thread(2);
    let keys: Vec<u64> = (0..2_000u64)
        .map(|i| (i * 2_654_435_761) % 100_000)
        .collect();
    for map in &maps {
        for &k in &keys {
            map.put(&mut ctx, k, k + 1);
        }
    }
    let mut reference: Option<Vec<(u64, u64)>> = None;
    for map in &maps {
        let mut out = Vec::new();
        map.scan(&mut ctx, 0, usize::MAX, &mut out);
        assert!(
            out.windows(2).all(|w| w[0].0 < w[1].0),
            "{} scan must be strictly sorted",
            map.name()
        );
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(&out, r, "{} disagrees with reference", map.name()),
        }
    }
}

#[test]
fn deletes_are_equivalent_to_absence_everywhere() {
    let rt = Runtime::new_virtual();
    for map in systems(&rt) {
        let mut ctx = rt.thread(3);
        for k in 0..500u64 {
            map.put(&mut ctx, k, k);
        }
        for k in (0..500u64).step_by(2) {
            assert_eq!(map.delete(&mut ctx, k), Some(k), "{}", map.name());
        }
        for k in 0..500u64 {
            let expect = (k % 2 == 1).then_some(k);
            assert_eq!(map.get(&mut ctx, k), expect, "{} key {k}", map.name());
        }
        let mut out = Vec::new();
        let n = map.scan(&mut ctx, 0, usize::MAX, &mut out);
        assert_eq!(n, 250, "{}", map.name());
        assert!(out.iter().all(|(k, _)| k % 2 == 1));
    }
}
