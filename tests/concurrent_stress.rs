//! Real-thread stress tests: genuine parallel interleavings over every
//! tree, checking linearizability witnesses that survive concurrency —
//! disjoint-key inserts never get lost, hot-key updates converge to some
//! written value, scans stay sorted and duplicate-free, and the
//! per-structure audit matches the union of surviving operations.

use std::sync::Arc;

use eunomia::prelude::*;

fn all_trees(rt: &Arc<Runtime>) -> Vec<Box<dyn ConcurrentMap>> {
    vec![
        Box::new(EunoBTreeDefault::new(Arc::clone(rt))),
        Box::new(HtmBTree::<16>::new(Arc::clone(rt))),
        Box::new(Masstree::new(Arc::clone(rt))),
        Box::new(HtmMasstree::new(Arc::clone(rt))),
    ]
}

#[test]
fn disjoint_inserts_survive_on_every_tree() {
    let rt = Runtime::new_concurrent();
    for tree in all_trees(&rt) {
        let per = 400u64;
        let threads = 4u64;
        std::thread::scope(|s| {
            for tid in 0..threads {
                let tree = tree.as_ref();
                let mut ctx = rt.thread(1000 + tid);
                s.spawn(move || {
                    // Interleaved key ranges to force shared leaves.
                    for i in 0..per {
                        let key = i * threads + tid;
                        assert_eq!(tree.put(&mut ctx, key, key + 7), None);
                    }
                });
            }
        });
        let mut ctx = rt.thread(1);
        for key in 0..threads * per {
            assert_eq!(
                tree.get(&mut ctx, key),
                Some(key + 7),
                "{} lost key {key}",
                tree.name()
            );
        }
    }
}

#[test]
fn hot_key_updates_converge_to_a_written_value() {
    let rt = Runtime::new_concurrent();
    for tree in all_trees(&rt) {
        let threads = 4u64;
        let iters = 300u64;
        std::thread::scope(|s| {
            for tid in 0..threads {
                let tree = tree.as_ref();
                let mut ctx = rt.thread(2000 + tid);
                s.spawn(move || {
                    for i in 0..iters {
                        let key = i % 4; // four scorching keys
                        let val = (tid << 32) | i;
                        tree.put(&mut ctx, key, val);
                        tree.get(&mut ctx, key);
                    }
                });
            }
        });
        let mut ctx = rt.thread(2);
        for key in 0..4u64 {
            let v = tree
                .get(&mut ctx, key)
                .unwrap_or_else(|| panic!("{} missing hot key {key}", tree.name()));
            let (tid, i) = (v >> 32, v & 0xffff_ffff);
            assert!(
                tid < threads && i < iters,
                "{} bogus value {v:#x}",
                tree.name()
            );
            assert_eq!(i % 4, key, "{} value written for wrong key", tree.name());
        }
    }
}

#[test]
fn mixed_workload_with_deletes_keeps_scan_invariants() {
    let rt = Runtime::new_concurrent();
    for tree in all_trees(&rt) {
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let tree = tree.as_ref();
                let mut ctx = rt.thread(3000 + tid);
                s.spawn(move || {
                    let mut state = 0x1234_5678_9abc_def0 ^ tid;
                    for _ in 0..500 {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        let key = state % 256;
                        match state % 5 {
                            0 | 1 => {
                                tree.put(&mut ctx, key, state >> 8);
                            }
                            2 => {
                                tree.delete(&mut ctx, key);
                            }
                            3 => {
                                tree.get(&mut ctx, key);
                            }
                            _ => {
                                let mut out = Vec::new();
                                tree.scan(&mut ctx, key, 8, &mut out);
                                assert!(
                                    out.windows(2).all(|w| w[0].0 < w[1].0),
                                    "{} unsorted concurrent scan",
                                    tree.name()
                                );
                                assert!(out.iter().all(|(k, _)| *k >= key));
                            }
                        }
                    }
                });
            }
        });
        // Quiesced final audit: full scan sorted and duplicate-free.
        let mut ctx = rt.thread(3);
        let mut out = Vec::new();
        tree.scan(&mut ctx, 0, usize::MAX, &mut out);
        assert!(
            out.windows(2).all(|w| w[0].0 < w[1].0),
            "{} final scan has duplicates or disorder",
            tree.name()
        );
        for (k, _) in &out {
            assert!(*k < 256);
        }
    }
}

#[test]
fn workload_harness_runs_concurrently() {
    // End-to-end: the euno-sim concurrent runner over the Euno tree.
    let rt = Runtime::new_concurrent();
    let tree = EunoBTreeDefault::new(Arc::clone(&rt));
    let spec = WorkloadSpec {
        key_range: 10_000,
        ..WorkloadSpec::paper_default(0.9)
    };
    preload(&tree, &rt, &spec);
    let cfg = RunConfig {
        threads: 4,
        ops_per_thread: 2_000,
        seed: 5,
        warmup_ops: 100,
        ..RunConfig::default()
    };
    let m = run_concurrent(&tree, &rt, &spec, &cfg);
    assert_eq!(m.total_ops, 8_000);
    assert!(m.throughput > 0.0);
    // The audit still holds after a contended mixed run.
    let mut ctx = rt.thread(77);
    let mut out = Vec::new();
    tree.scan(&mut ctx, 0, usize::MAX, &mut out);
    assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
}
