//! Shape tests for the paper's evaluation: tiny-budget versions of the
//! figure experiments asserting that the qualitative results of §2.3 and
//! §5 hold — who wins, in which regime, and why. The bench binaries
//! regenerate the full curves; these tests keep the shapes from
//! regressing.

use std::sync::Arc;

use eunomia::prelude::*;

fn measure(map: &dyn ConcurrentMap, rt: &Arc<Runtime>, theta: f64, threads: usize) -> RunMetrics {
    let spec = WorkloadSpec {
        key_range: 100_000,
        ..WorkloadSpec::paper_default(theta)
    };
    preload(map, rt, &spec);
    rt.reset_dynamics();
    let cfg = RunConfig {
        threads,
        ops_per_thread: 4_000,
        seed: 0x5EED,
        warmup_ops: 400,
        ..RunConfig::default()
    };
    run_virtual(map, rt, &spec, &cfg)
}

fn fresh<M>(build: impl FnOnce(Arc<Runtime>) -> M) -> (Arc<Runtime>, M) {
    let rt = Runtime::new_virtual();
    let m = build(Arc::clone(&rt));
    (rt, m)
}

/// Figure 1: the monolithic HTM-B+Tree collapses under contention.
#[test]
fn htm_btree_collapses_past_theta_06() {
    let (rt, tree) = fresh(HtmBTree::<16>::new);
    let low = measure(&tree, &rt, 0.2, 16);
    let (rt, tree) = fresh(HtmBTree::<16>::new);
    let high = measure(&tree, &rt, 0.9, 16);
    assert!(
        high.throughput < low.throughput / 2.0,
        "collapse expected: low {:.1} vs high {:.1} Mops/s",
        low.mops(),
        high.mops()
    );
    assert!(
        high.aborts_per_op > 10.0 * low.aborts_per_op.max(0.01),
        "abort rate must explode: {} vs {}",
        high.aborts_per_op,
        low.aborts_per_op
    );
}

/// §2.3: most cycles are wasted and most conflicts are leaf-level false
/// conflicts under high contention.
#[test]
fn abort_taxonomy_matches_paper_analysis() {
    let (rt, tree) = fresh(HtmBTree::<16>::new);
    let m = measure(&tree, &rt, 0.9, 16);
    let conflicts = m.aborts.conflicts().max(1) as f64;
    let false_frac = (m.aborts.false_different_record + m.aborts.false_metadata) as f64 / conflicts;
    let leaf_frac = m.aborts.leaf_level_conflicts() as f64 / conflicts;
    assert!(
        false_frac > 0.5,
        "false conflicts must dominate, got {false_frac:.2}"
    );
    assert!(
        leaf_frac > 0.8,
        "conflicts concentrate at the leaf level, got {leaf_frac:.2}"
    );
    // §2.3 attributes >94 % of cycles to aborted work on hardware; in the
    // virtual-time model contention shows up as aborted-attempt cycles plus
    // fallback-lock waiting — together they must dominate.
    let lost = m.wasted_cycle_fraction
        + m.stats.cycles_lock_wait as f64 / m.stats.cycles_total.max(1) as f64;
    assert!(
        lost > 0.35,
        "contention must burn a large cycle share under θ=0.9, got {lost:.2}"
    );
    assert!(
        m.aborts.true_same_record > 0,
        "true conflicts must exist under a hot zipfian"
    );
}

/// Figures 8/9: Euno-B+Tree beats the HTM-B+Tree by a wide margin under
/// high contention and nearly matches it under low contention.
#[test]
fn euno_wins_under_contention_and_ties_at_low_skew() {
    let (rt, euno) = fresh(EunoBTreeDefault::new);
    let euno_high = measure(&euno, &rt, 0.9, 16);
    let (rt, htm) = fresh(HtmBTree::<16>::new);
    let htm_high = measure(&htm, &rt, 0.9, 16);
    assert!(
        euno_high.throughput > 2.0 * htm_high.throughput,
        "high contention: Euno {:.2} vs HTM {:.2} Mops/s",
        euno_high.mops(),
        htm_high.mops()
    );
    assert!(
        euno_high.aborts_per_op < htm_high.aborts_per_op / 2.0,
        "Euno must eliminate most aborts: {:.2} vs {:.2}",
        euno_high.aborts_per_op,
        htm_high.aborts_per_op
    );

    let (rt, euno) = fresh(EunoBTreeDefault::new);
    let euno_low = measure(&euno, &rt, 0.2, 16);
    let (rt, htm) = fresh(HtmBTree::<16>::new);
    let htm_low = measure(&htm, &rt, 0.2, 16);
    assert!(
        euno_low.throughput > 0.75 * htm_low.throughput,
        "low contention: Euno {:.2} must stay within ~25% of HTM {:.2}",
        euno_low.mops(),
        htm_low.mops()
    );
}

/// §5.2: Masstree executes clearly more instrumented accesses per op than
/// Euno (the paper: ~2.1× at θ=0.5), and Euno outperforms it under high
/// contention.
#[test]
fn masstree_instruction_overhead_and_contention_loss() {
    let (rt, mt) = fresh(Masstree::new);
    let mt_m = measure(&mt, &rt, 0.5, 16);
    let (rt, euno) = fresh(EunoBTreeDefault::new);
    let euno_m = measure(&euno, &rt, 0.5, 16);
    assert!(
        mt_m.accesses_per_op > 1.2 * euno_m.accesses_per_op,
        "Masstree accesses/op {:.1} must exceed Euno {:.1}",
        mt_m.accesses_per_op,
        euno_m.accesses_per_op
    );

    let (rt, mt) = fresh(Masstree::new);
    let mt_high = measure(&mt, &rt, 0.9, 16);
    let (rt, euno) = fresh(EunoBTreeDefault::new);
    let euno_high = measure(&euno, &rt, 0.9, 16);
    assert!(
        euno_high.throughput > mt_high.throughput,
        "high contention: Euno {:.2} vs Masstree {:.2} Mops/s",
        euno_high.mops(),
        mt_high.mops()
    );
}

/// §5.2: HTM-Masstree underperforms lock-based Masstree — version words
/// in the read/write sets make whole-op transactions abort-prone.
#[test]
fn htm_masstree_is_worse_than_masstree_under_contention() {
    let (rt, hmt) = fresh(HtmMasstree::new);
    let hmt_m = measure(&hmt, &rt, 0.9, 16);
    let (rt, mt) = fresh(Masstree::new);
    let mt_m = measure(&mt, &rt, 0.9, 16);
    assert!(
        hmt_m.throughput < mt_m.throughput,
        "HTM-Masstree {:.2} must trail Masstree {:.2} Mops/s",
        hmt_m.mops(),
        mt_m.mops()
    );
    assert!(hmt_m.aborts_per_op > 0.1, "it must be abort-bound");
}

/// Figure 10 (low contention): Euno scales with the thread count.
#[test]
fn euno_scales_at_low_contention() {
    let (rt, euno) = fresh(EunoBTreeDefault::new);
    let one = measure(&euno, &rt, 0.2, 1);
    let (rt, euno) = fresh(EunoBTreeDefault::new);
    let sixteen = measure(&euno, &rt, 0.2, 16);
    assert!(
        sixteen.throughput > 6.0 * one.throughput,
        "16 threads must be ≥6× of 1: {:.2} vs {:.2} Mops/s",
        sixteen.mops(),
        one.mops()
    );
}

/// Figure 13 ladder: each design increment improves high-contention
/// throughput.
#[test]
fn ablation_ladder_is_monotone_under_contention() {
    let mut last = 0.0;
    let labels = ["+SplitHTM", "+PartLeaf", "+CCM lock", "+CCM mark"];
    let measures: Vec<f64> = vec![
        {
            let rt = Runtime::new_virtual();
            let t =
                EunoBTreeUnpartitioned::with_config(Arc::clone(&rt), EunoConfig::split_htm_only());
            measure(&t, &rt, 0.9, 16).throughput
        },
        {
            let rt = Runtime::new_virtual();
            let t = EunoBTree::<4, 4>::with_config(Arc::clone(&rt), EunoConfig::part_leaf());
            measure(&t, &rt, 0.9, 16).throughput
        },
        {
            let rt = Runtime::new_virtual();
            let t = EunoBTree::<4, 4>::with_config(Arc::clone(&rt), EunoConfig::ccm_lockbits());
            measure(&t, &rt, 0.9, 16).throughput
        },
        {
            let rt = Runtime::new_virtual();
            let t = EunoBTree::<4, 4>::with_config(Arc::clone(&rt), EunoConfig::ccm_markbits());
            measure(&t, &rt, 0.9, 16).throughput
        },
    ];
    // Require overall growth and no catastrophic inversion between steps.
    for (i, &m) in measures.iter().enumerate() {
        if i > 0 {
            assert!(
                m > last * 0.8,
                "{} ({m:.0}) regressed badly vs {} ({last:.0})",
                labels[i],
                labels[i - 1]
            );
        }
        last = m;
    }
    // The exact margin depends on the deterministic RNG streams (segment
    // randomization, schedule jitter); ~1.4–1.6× is the stable band.
    assert!(
        measures[3] > measures[0] * 1.35,
        "full CCM must clearly beat bare split-HTM: {:.0} vs {:.0}",
        measures[3],
        measures[0]
    );
}

/// §5.7: the Eunomia auxiliaries cost little memory.
#[test]
fn memory_overhead_is_small() {
    let (rt, euno) = fresh(EunoBTreeDefault::new);
    let _ = measure(&euno, &rt, 0.9, 16);
    let m = euno.memory();
    assert!(m.ccm_bytes > 0 && m.structural_bytes > 0);
    assert!(
        m.overhead_fraction() < 0.35,
        "aux overhead {:.1}% too large",
        100.0 * m.overhead_fraction()
    );
}

/// Determinism: the whole pipeline is reproducible for a fixed seed.
#[test]
fn virtual_runs_are_deterministic() {
    let run = || {
        let rt = Runtime::new_virtual();
        let t = EunoBTreeDefault::new(Arc::clone(&rt));
        let m = measure(&t, &rt, 0.9, 8);
        (
            m.total_ops,
            m.stats.cycles_total,
            m.aborts.total(),
            m.stats.mem_accesses,
        )
    };
    assert_eq!(run(), run());
}
