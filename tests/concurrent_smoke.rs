//! Repo-level `Mode::Concurrent` smoke: every tree runs all five client
//! operations under real threads *with the full correctness subsystem
//! attached* — recorded histories through the linearizability oracle and
//! (for Euno) the structural audits. This is the cheap always-on version
//! of `scripts/check.sh`'s stress stage.

use std::sync::Arc;

use eunomia::check::{run_all, SeqnoWatch, StressConfig};
use eunomia::prelude::*;

#[test]
fn checked_stress_smoke_every_tree() {
    let cfg = StressConfig {
        threads: 4,
        ops_per_thread: 600,
        seed: 0xC0FFEE,
        key_range: 256,
        preload: 128,
        ..StressConfig::default()
    };
    let reports = run_all(&cfg, None);
    assert_eq!(reports.len(), 5, "all five trees must run");
    for r in &reports {
        assert!(
            r.passed(),
            "{} failed: {:?} / invariants {:?}",
            r.tree,
            r.verdict,
            r.invariant_violations
        );
        assert!(
            matches!(r.verdict, Verdict::Linearizable { .. }),
            "{}: {:?}",
            r.tree,
            r.verdict
        );
    }
}

#[test]
fn euno_audits_hold_under_heavy_delete_maintain_race() {
    // Delete-heavy traffic plus two maintenance threads: merges race
    // client ops and each other for the whole run — the exact shape that
    // flushed out the dead-leaf merge bug. Seqno monotonicity and the
    // quiescent structural audit must stay clean.
    let rt = Runtime::new_concurrent();
    let tree = EunoBTreeDefault::new(Arc::clone(&rt));
    {
        let mut ctx = rt.thread(0);
        for k in 0..3_000u64 {
            tree.put(&mut ctx, k, k + 5);
        }
        for k in 0..3_000u64 {
            if k % 4 != 0 {
                tree.delete(&mut ctx, k);
            }
        }
    }
    let mut watch = SeqnoWatch::new();
    watch.observe(&tree.leaf_seqnos_plain());
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let mut workers = Vec::new();
        for tid in 0..3u64 {
            let tree = &tree;
            let mut ctx = rt.thread(10 + tid);
            workers.push(s.spawn(move || {
                for i in 0..1_500u64 {
                    let key = (i * 11 + tid * 401) % 3_000;
                    match i % 3 {
                        0 => {
                            tree.delete(&mut ctx, key);
                        }
                        1 => {
                            tree.put(&mut ctx, key, (tid << 40) | i);
                        }
                        _ => {
                            tree.get(&mut ctx, key);
                        }
                    }
                }
            }));
        }
        for m in 0..2u64 {
            let tree = &tree;
            let stop = &stop;
            let mut ctx = rt.thread(20 + m);
            s.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    tree.maintain(&mut ctx);
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            });
        }
        let watcher = {
            let tree = &tree;
            let stop = &stop;
            s.spawn(move || {
                let mut snaps = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    snaps.push(tree.leaf_seqnos_plain());
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                snaps
            })
        };
        for w in workers {
            w.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for snap in watcher.join().unwrap() {
            watch.observe(&snap);
        }
    });
    watch.observe(&tree.leaf_seqnos_plain());
    assert!(
        watch.violations().is_empty(),
        "seqno monotonicity violated: {:?}",
        watch.violations()
    );
    assert_eq!(
        tree.audit_quiescent(),
        Vec::<String>::new(),
        "structural audit failed after delete/maintain race"
    );
}
