//! Real Intel TSX/RTM demo (requires `--features euno-htm/hw-rtm` and a
//! CPU with RTM; falls back gracefully otherwise).
//!
//! Runs genuine hardware lock elision over `TxCell`s: a counter bump and a
//! tiny array shuffle execute inside real `XBEGIN`/`XEND` transactions,
//! with abort statistics straight from the silicon's status word.
//!
//! ```sh
//! cargo run --release --example hardware_rtm --features euno-htm/hw-rtm
//! ```

#[cfg(all(feature = "hw-rtm", target_arch = "x86_64"))]
fn main() {
    use eunomia::htm::hw::{rtm_supported, status, HwRegion};
    use eunomia::htm::TxCell;

    if !rtm_supported() {
        println!("CPU reports no RTM support — the software engine remains available.");
        return;
    }
    println!("RTM supported: running genuine hardware transactions.\n");

    let fallback = TxCell::new(0u64);
    // Start away from zero so the transfer arithmetic never saturates.
    let base = 1_000u64;
    let cells: Vec<TxCell<u64>> = (0..8).map(|_| TxCell::new(base)).collect();
    let region = HwRegion::new(&fallback).with_attempts(8);

    let mut attempts = 0u64;
    let mut aborts_seen = 0u32;
    let mut fallbacks = 0u64;
    let iterations = 100_000u64;

    for i in 0..iterations {
        let idx = (i % 8) as usize;
        let (_, out) = region.execute(|| {
            // Atomically move a unit between two cells and bump a third —
            // multi-word atomicity straight from the hardware.
            let a = cells[idx].load_plain();
            let b = cells[(idx + 1) % 8].load_plain();
            cells[idx].store_plain(a + 2);
            cells[(idx + 1) % 8].store_plain(b - 1);
        });
        attempts += out.attempts as u64;
        aborts_seen |= out.abort_status_union;
        fallbacks += out.used_fallback as u64;
    }

    let total: u64 = cells.iter().map(|c| c.load_plain()).sum();
    let expected = 8 * base + iterations;
    println!("iterations          {iterations}");
    println!("hw attempts         {attempts}");
    println!("fallback executions {fallbacks}");
    println!("net cell sum        {total} (expected {expected})");
    print!("abort causes seen   ");
    if aborts_seen == 0 {
        println!("none");
    } else {
        let mut parts = Vec::new();
        if aborts_seen & status::CONFLICT != 0 {
            parts.push("conflict");
        }
        if aborts_seen & status::CAPACITY != 0 {
            parts.push("capacity");
        }
        if aborts_seen & status::EXPLICIT != 0 {
            parts.push("explicit");
        }
        if aborts_seen & status::RETRY != 0 {
            parts.push("retry-hint");
        }
        println!("{}", parts.join(" | "));
    }
    assert_eq!(
        total, expected,
        "hardware transactions must not lose updates"
    );
    println!("\nhardware transactional execution verified ✓");
}

#[cfg(not(all(feature = "hw-rtm", target_arch = "x86_64")))]
fn main() {
    println!(
        "Build with the hardware feature to run this demo:\n  \
         cargo run --release --example hardware_rtm --features euno-htm/hw-rtm"
    );
}
