//! Adaptive contention control in action (§4.1, Figure 13 `+Adaptive`).
//!
//! Phase 1 hammers one hot leaf from 16 virtual threads (the CCM stays
//! engaged and throttles true conflicts); phase 2 spreads the same threads
//! across a uniform keyspace (the per-leaf detectors observe calm windows
//! and bypass the CCM, shedding its overhead). The demo prints the
//! aborts/op and lock-wait profile of each phase plus the fraction of
//! leaves that ended up in bypass mode.
//!
//! ```sh
//! cargo run --release --example adaptive_demo
//! ```

use std::sync::Arc;

use eunomia::prelude::*;

fn phase(
    label: &str,
    tree: &EunoBTreeDefault,
    rt: &Arc<Runtime>,
    spec: &WorkloadSpec,
) -> RunMetrics {
    rt.reset_dynamics();
    let cfg = RunConfig {
        threads: 16,
        ops_per_thread: 5_000,
        seed: 99,
        warmup_ops: 500,
        ..RunConfig::default()
    };
    let m = run_virtual(tree, rt, spec, &cfg);
    println!(
        "{label:<28} {:>8.2} Mops/s  {:>7.4} aborts/op  {:>12} lock-wait cycles",
        m.mops(),
        m.aborts_per_op,
        m.stats.cycles_lock_wait
    );
    m
}

fn main() {
    let rt = Runtime::new_virtual();
    let tree = EunoBTreeDefault::new(Arc::clone(&rt));
    let spec_hot = WorkloadSpec {
        key_range: 64, // a handful of leaves: extreme contention
        preload: Preload::FirstN(64),
        ..WorkloadSpec::paper_default(0.99)
    };
    let spec_calm = WorkloadSpec {
        key_range: 1_000_000,
        ..WorkloadSpec::paper_default(0.0) // uniform
    };
    preload(&tree, &rt, &spec_calm);

    println!("== phase 1: 16 threads on a 64-key hot set (CCM engaged) ==");
    let hot = phase("hot zipfian(0.99)/64 keys", &tree, &rt, &spec_hot);

    println!("\n== phase 2: same tree, uniform over 1M keys (CCM bypasses) ==");
    let calm = phase("uniform/1M keys", &tree, &rt, &spec_calm);

    println!(
        "\nhot phase paid {:.1}× the aborts/op of the calm phase;",
        hot.aborts_per_op.max(1e-9) / calm.aborts_per_op.max(1e-9)
    );
    println!(
        "calm phase throughput {:.2}× the hot phase (adaptive bypass sheds CCM cost).",
        calm.mops() / hot.mops()
    );
}
