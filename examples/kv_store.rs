//! A miniature key-value store service loop over Euno-B+Tree — the kind
//! of in-memory-database index workload (DBX/DrTM-style) the paper's
//! introduction motivates.
//!
//! Reads a simple command stream from stdin (one command per line) and
//! answers on stdout; with no stdin redirection it runs a short built-in
//! demo script.
//!
//! Commands: `put <k> <v>` | `get <k>` | `del <k>` | `scan <from> <n>` |
//! `stats` | `quit`
//!
//! ```sh
//! printf 'put 1 10\nput 2 20\nscan 0 10\nstats\n' | \
//!     cargo run --release --example kv_store
//! ```

use std::io::{self, BufRead, IsTerminal, Write};
use std::sync::Arc;

use eunomia::prelude::*;

fn main() {
    let rt = Runtime::new_concurrent(); // a real service would use OS threads
    let tree = EunoBTreeDefault::new(Arc::clone(&rt));
    let mut ctx = rt.thread(1);
    let stdin = io::stdin();
    let mut out = io::stdout().lock();

    let demo = "put 1 100\nput 2 200\nput 3 300\nget 2\ndel 2\nget 2\nscan 1 10\nstats\nquit\n";
    let source: Box<dyn BufRead> = if stdin.is_terminal() {
        eprintln!("(no piped stdin: running demo script)");
        Box::new(io::Cursor::new(demo))
    } else {
        Box::new(stdin.lock())
    };

    for line in source.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let mut parts = line.split_whitespace();
        let reply = match parts.next() {
            Some("put") => match (parts.next(), parts.next()) {
                (Some(k), Some(v)) => match (k.parse(), v.parse()) {
                    (Ok(k), Ok(v)) => match tree.put(&mut ctx, k, v) {
                        Some(old) => format!("OK (was {old})"),
                        None => "OK (new)".into(),
                    },
                    _ => "ERR put <u64> <u64>".into(),
                },
                _ => "ERR put <k> <v>".into(),
            },
            Some("get") => match parts.next().and_then(|k| k.parse().ok()) {
                Some(k) => match tree.get(&mut ctx, k) {
                    Some(v) => format!("{v}"),
                    None => "(nil)".into(),
                },
                None => "ERR get <k>".into(),
            },
            Some("del") => match parts.next().and_then(|k| k.parse().ok()) {
                Some(k) => match tree.delete(&mut ctx, k) {
                    Some(v) => format!("OK (was {v})"),
                    None => "(nil)".into(),
                },
                None => "ERR del <k>".into(),
            },
            Some("scan") => match (
                parts.next().and_then(|k| k.parse().ok()),
                parts.next().and_then(|n| n.parse().ok()),
            ) {
                (Some(from), Some(n)) => {
                    let mut rows = Vec::new();
                    tree.scan(&mut ctx, from, n, &mut rows);
                    rows.iter()
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                }
                _ => "ERR scan <from> <n>".into(),
            },
            Some("stats") => {
                let stages = ctx.exec_stages();
                format!(
                    "ops={} commits={} aborts={} fallbacks={} mem={}B",
                    ctx.stats.ops,
                    stages.commits,
                    ctx.stats.aborts.total(),
                    stages.fallbacks,
                    tree.memory().total_live(),
                )
            }
            Some("quit") | Some("exit") => break,
            Some(cmd) => format!("ERR unknown command {cmd}"),
            None => continue,
        };
        writeln!(out, "{reply}").unwrap();
    }
}
