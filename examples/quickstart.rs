//! Quickstart: build an Euno-B+Tree, use it as an ordered key-value map,
//! and peek at the HTM statistics the engine collects.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use eunomia::prelude::*;

fn main() {
    // A virtual-time runtime: deterministic, cycle-accounted execution
    // (use `Runtime::new_concurrent()` for real OS threads instead).
    let rt = Runtime::new_virtual();
    let tree = EunoBTreeDefault::new(Arc::clone(&rt));
    let mut ctx = rt.thread(42);

    // Point operations.
    assert_eq!(tree.put(&mut ctx, 7, 700), None);
    assert_eq!(tree.put(&mut ctx, 3, 300), None);
    assert_eq!(tree.put(&mut ctx, 7, 701), Some(700), "update returns old");
    assert_eq!(tree.get(&mut ctx, 3), Some(300));
    assert_eq!(tree.get(&mut ctx, 99), None);
    assert_eq!(tree.delete(&mut ctx, 3), Some(300));
    assert_eq!(tree.get(&mut ctx, 3), None);

    // Bulk load and an ordered range scan.
    for k in 0..10_000u64 {
        tree.put(&mut ctx, k, k * k);
    }
    let mut out = Vec::new();
    tree.scan(&mut ctx, 5_000, 5, &mut out);
    println!("scan from 5000: {out:?}");
    assert_eq!(out[0], (5_000, 5_000 * 5_000));

    // The engine accounts everything the paper measures; the episode
    // stage counts live in the always-on metrics registry.
    let stages = ctx.exec_stages();
    println!(
        "ops={} htm-commits={} aborts/op={:.4} mem-accesses/op={:.1} virtual-cycles={}",
        ctx.stats.ops + 10_003, // puts/gets above don't bump ops by themselves
        stages.commits,
        ctx.stats.aborts_per_op(),
        ctx.stats.mem_accesses as f64 / stages.commits.max(1) as f64,
        ctx.clock,
    );
    let mem = tree.memory();
    println!(
        "memory: structural={}B ccm={}B reserved-peak={}B (aux overhead {:.2}%)",
        mem.structural_bytes,
        mem.ccm_bytes,
        mem.reserved_peak_bytes,
        100.0 * mem.overhead_fraction()
    );
}
