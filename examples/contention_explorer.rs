//! Contention explorer: run any of the four systems under a configurable
//! YCSB-style workload on the virtual-time scheduler and print the full
//! metric set — an interactive version of the paper's Figure 8/10 cells.
//!
//! ```sh
//! cargo run --release --example contention_explorer -- \
//!     --system euno --theta 0.9 --threads 16 --ops 20000 --get 0.5
//! ```

use std::sync::Arc;

use eunomia::prelude::*;

struct Args {
    system: String,
    theta: f64,
    threads: usize,
    ops: u64,
    get: f64,
    keys: u64,
}

fn parse_args() -> Args {
    let mut a = Args {
        system: "euno".into(),
        theta: 0.9,
        threads: 16,
        ops: 20_000,
        get: 0.5,
        keys: 1_000_000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().expect("flag needs a value");
        match flag.as_str() {
            "--system" => a.system = val(),
            "--theta" => a.theta = val().parse().unwrap(),
            "--threads" => a.threads = val().parse().unwrap(),
            "--ops" => a.ops = val().parse().unwrap(),
            "--get" => a.get = val().parse().unwrap(),
            "--keys" => a.keys = val().parse().unwrap(),
            other => {
                eprintln!("unknown flag {other}; flags: --system euno|htm|masstree|htm-masstree --theta F --threads N --ops N --get F --keys N");
                std::process::exit(2);
            }
        }
    }
    a
}

fn main() {
    let a = parse_args();
    let rt = Runtime::new_virtual();
    let map: Box<dyn ConcurrentMap> = match a.system.as_str() {
        "euno" => Box::new(EunoBTreeDefault::new(Arc::clone(&rt))),
        "htm" => Box::new(HtmBTree::<16>::new(Arc::clone(&rt))),
        "masstree" => Box::new(Masstree::new(Arc::clone(&rt))),
        "htm-masstree" => Box::new(HtmMasstree::new(Arc::clone(&rt))),
        other => {
            eprintln!("unknown system {other}");
            std::process::exit(2);
        }
    };

    let spec = WorkloadSpec {
        key_range: a.keys,
        mix: OpMix::get_put(a.get),
        ..WorkloadSpec::paper_default(a.theta)
    };
    eprintln!(
        "preloading {} keys into {} …",
        spec.preload_keys().count(),
        map.name()
    );
    preload(map.as_ref(), &rt, &spec);
    rt.reset_dynamics();

    let cfg = RunConfig {
        threads: a.threads,
        ops_per_thread: a.ops,
        seed: 7,
        warmup_ops: (a.ops / 5).max(4_000),
        ..RunConfig::default()
    };
    let m = run_virtual(map.as_ref(), &rt, &spec, &cfg);

    println!("\nsystem          {}", map.name());
    println!(
        "workload        zipfian θ={} | {:.0}% get | {} threads | {} ops/thread",
        a.theta,
        a.get * 100.0,
        a.threads,
        a.ops
    );
    println!(
        "throughput      {:.2} Mops/s (virtual 2.3 GHz × {} cores)",
        m.mops(),
        a.threads
    );
    println!("aborts/op       {:.4}", m.aborts_per_op);
    println!("  true same-record    {:>10}", m.aborts.true_same_record);
    println!(
        "  false diff-record   {:>10}",
        m.aborts.false_different_record
    );
    println!("  false metadata      {:>10}", m.aborts.false_metadata);
    println!("  false structure     {:>10}", m.aborts.false_structure);
    println!(
        "  capacity/spurious   {:>10}",
        m.aborts.capacity + m.aborts.spurious
    );
    println!("  fallback-locked     {:>10}", m.aborts.fallback_locked);
    println!("wasted cycles   {:.1}%", 100.0 * m.wasted_cycle_fraction);
    println!("accesses/op     {:.1}", m.accesses_per_op);
    println!("fallbacks/op    {:.5}", m.fallbacks_per_op);
    println!("lock-wait       {} cycles total", m.stats.cycles_lock_wait);
    println!(
        "optimistic-retries/op {:.4}",
        m.stats.optimistic_retries as f64 / m.total_ops.max(1) as f64
    );
}
